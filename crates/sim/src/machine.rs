//! The trace-driven cycle model: fetch, dispatch, divert, issue, retire.
//!
//! One [`Machine::run`] replays a retirement [`Trace`] through the
//! PolyFlow microarchitecture of Figure 7:
//!
//! * **Tasks** partition the trace into contiguous intervals, oldest first.
//!   The tail (youngest) task may spawn: when it fetches a trigger PC its
//!   [`SpawnSource`] knows, and the target PC occurs in the trace within
//!   `max_spawn_distance` instructions, the tail task is split there
//!   (§3.2: spawning only from the tail task, oracle distance check).
//! * **Fetch** selects up to `fetch_tasks_per_cycle` stall-free tasks by
//!   biased ICount (fewest in-flight instructions first, §3.2) and fetches
//!   up to `width` instructions total, at most one taken control transfer
//!   per task per cycle. A mispredicted branch stalls *only its own task's
//!   fetch* until the branch resolves — control-equivalent tasks keep
//!   fetching, which is exactly the control-independence benefit the paper
//!   exploits. Instruction-cache misses stall the fetching task for the
//!   fill latency.
//! * **Dispatch** moves decoded instructions, oldest task first, into the
//!   shared ROB. Instructions with an inter-task source operand that has
//!   not yet been produced go to the **divert queue** instead of the
//!   scheduler (§3.1); they enter the scheduler once their producers have
//!   dispatched. No value prediction, no selective re-execution.
//! * **Issue** selects ready scheduler entries oldest-first onto the 8
//!   functional units; loads/stores access the cache hierarchy at issue.
//! * **Retire** drains up to `width` completed instructions per cycle in
//!   global trace order (the shared ROB retires architecturally in order)
//!   and feeds the retirement stream to the spawn source (training the
//!   reconvergence predictor online, §4.4).
//!
//! # Data-oriented core & cycle skipping
//!
//! The implementation is struct-of-arrays and event-aware: per-instruction
//! pipeline state lives in parallel arrays (`InstTable`) so the hot scans
//! touch dense cache lines; the scheduler and divert scans cache the
//! earliest cycle at which any of their entries could become ready, so
//! no-op scans are skipped outright; and cycles on which provably nothing
//! can happen — no retire, wakeup, release, decode, resume, or branch
//! resolution — are fast-forwarded in bulk ([`SimOptions::cycle_skip`]),
//! with the cycle-accounting buckets and their paired stall counters
//! charged in one step. Results are bit-identical to stepped execution,
//! including the event stream and both watchdogs (DESIGN.md §13 carries
//! the argument).

use crate::account::{Bucket, CycleAccount};
use crate::branch_pred::PredictionTrace;
use crate::cache::Hierarchy;
use crate::config::MachineConfig;
use crate::error::SimError;
use crate::events::{NullSink, SimEvent, TraceSink};
use crate::metrics::SimResult;
use crate::profile::{phase, PhaseProfile};
use crate::spawn_source::SpawnSource;
use crate::store_set::{DependenceMode, StoreSetPredictor};
use polyflow_isa::{Dataflow, InstClass, PcIndex, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

const NOT_YET: u64 = u64::MAX;
const OPEN_END: u32 = u32::MAX;
/// Saturation ceiling of the spawn-profitability counters.
const PROFIT_MAX: i8 = 7;
/// Events retained by the always-on post-mortem flight recorder (the
/// tail of the event stream travels with [`SimError::Livelock`]).
const EVENT_RING: usize = 64;

/// `InstTable` flag bits (one byte per instruction).
const F_DISPATCHED: u8 = 1 << 0;
const F_IN_DIVERT: u8 = 1 << 1;
const F_ISSUED: u8 = 1 << 2;
/// Load dispatched ignoring its (predicted-independent) inter-task memory
/// producer; a violation occurs if it issues first.
const F_MEM_SPEC: u8 = 1 << 3;
/// Register source slots dispatched ignoring their inter-task producer
/// (hint-entry model): a violation occurs if the instruction issues
/// before the producer completes.
const F_REG_SPEC0: u8 = 1 << 4;
const F_REG_SPEC1: u8 = 1 << 5;
/// Currently sitting in the scheduler (wakeup bookkeeping: heap entries
/// re-validate against this bit, so stale wakes are harmless).
const F_IN_SCHED: u8 = 1 << 6;

/// [`ConsumerIndex::meta`] encoding: bits 0-1 issue latency class, bits
/// 2-3 fetch control class, bit 4 branch-taken. The issue and fetch hot
/// loops read this one byte (plus a flat address array) instead of the
/// 40-byte `TraceEntry` and its instruction decode.
const K_ISSUE_MASK: u8 = 0b11;
const K_LOAD: u8 = 1;
const K_STORE: u8 = 2;
const K_MUL: u8 = 3;
const K_FETCH_SHIFT: u8 = 2;
/// Conditional branch: mispredict stalls; taken transfers end the group.
const KF_COND: u8 = 1;
/// Call / return / indirect jump: mispredict check, then end the group.
const KF_STOP_PRED: u8 = 2;
/// Unconditional direct jump or halt: end the group unconditionally.
const KF_STOP: u8 = 3;
const K_TAKEN: u8 = 1 << 4;

/// Inverted dataflow: for every dynamic instruction, the dynamic
/// instructions that consume one of its results (register targets plus,
/// for stores, the dependent loads). CSR layout; config-independent, so
/// one index is shared by every run over a [`PreparedTrace`].
///
/// This is what makes the issue stage event-driven: instead of rescanning
/// the whole scheduler every cycle, a completing instruction walks its
/// consumer row and schedules wakeups for the ones currently in the
/// scheduler.
#[derive(Debug)]
pub struct ConsumerIndex {
    offsets: Vec<u32>,
    edges: Vec<u32>,
    /// Smallest producer index of each instruction (`u32::MAX` when it
    /// has none): `min_prod[i] >= task_start` proves every producer is
    /// intra-task, which lets dispatch skip the whole inter-task
    /// synchronization analysis.
    min_prod: Vec<u32>,
    /// Packed per-instruction issue/fetch class byte (see the `K_*`
    /// constants).
    meta: Vec<u8>,
    /// Effective data address for loads and stores, `0` otherwise.
    data_addr: Vec<u64>,
    /// Static PC word index (`byte address == word * 4`).
    pc_word: Vec<u32>,
}

impl ConsumerIndex {
    fn build(dataflow: &Dataflow, trace: &Trace) -> ConsumerIndex {
        let n = trace.len();
        let mut offsets = vec![0u32; n + 1];
        let mut min_prod = vec![u32::MAX; n];
        for (i, mp) in min_prod.iter_mut().enumerate() {
            let [a, b] = dataflow.reg_producers(i);
            let m = dataflow.mem_producer(i);
            for p in [a, b, m].into_iter().flatten() {
                offsets[p as usize + 1] += 1;
                *mp = (*mp).min(p);
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut edges = vec![0u32; offsets[n] as usize];
        for i in 0..n {
            let [a, b] = dataflow.reg_producers(i);
            let m = dataflow.mem_producer(i);
            for p in [a, b, m].into_iter().flatten() {
                let c = &mut cursor[p as usize];
                edges[*c as usize] = i as u32;
                *c += 1;
            }
        }
        let mut meta = vec![0u8; n];
        let mut data_addr = vec![0u64; n];
        let mut pc_word = vec![0u32; n];
        for (i, e) in trace.iter().enumerate() {
            let issue_kind = match e.class() {
                InstClass::Load => K_LOAD,
                InstClass::Store => K_STORE,
                InstClass::Mul => K_MUL,
                _ => 0,
            };
            let fetch_kind = match e.class() {
                InstClass::CondBranch => KF_COND,
                InstClass::Ret | InstClass::IndirectJump | InstClass::Call => KF_STOP_PRED,
                InstClass::Jump | InstClass::Halt => KF_STOP,
                _ => 0,
            };
            meta[i] =
                issue_kind | (fetch_kind << K_FETCH_SHIFT) | if e.taken { K_TAKEN } else { 0 };
            data_addr[i] = e.mem_addr.unwrap_or(0);
            pc_word[i] = e.pc.index() as u32;
        }
        ConsumerIndex {
            offsets,
            edges,
            min_prod,
            meta,
            data_addr,
            pc_word,
        }
    }

    /// The consumers of dynamic instruction `p`, in ascending trace order.
    #[inline]
    fn of(&self, p: usize) -> &[u32] {
        &self.edges[self.offsets[p] as usize..self.offsets[p + 1] as usize]
    }

    /// Smallest producer index of `i`, or `u32::MAX` if it has none.
    #[inline]
    fn min_producer(&self, i: usize) -> u32 {
        self.min_prod[i]
    }
}

/// Analyses of a trace that are shared by every policy run: dataflow
/// producers, the PC occurrence index, and branch-prediction outcomes.
///
/// Everything is reference-counted, so a `PreparedTrace` is cheap to
/// clone and safe to share read-only across threads — the parallel sweep
/// harness builds one per (workload, predictor configuration) and fans
/// the policy cells out over it. The config-independent oracles (dataflow
/// and PC index) can additionally be shared *across* predictor
/// configurations via [`PreparedTrace::with_oracles`].
#[derive(Debug, Clone)]
pub struct PreparedTrace {
    trace: Arc<Trace>,
    dataflow: Arc<Dataflow>,
    pc_index: Arc<PcIndex>,
    predictions: Arc<PredictionTrace>,
    consumers: Arc<ConsumerIndex>,
}

impl PreparedTrace {
    /// Precomputes everything `simulate` needs. Clones the trace into
    /// shared ownership; use [`PreparedTrace::from_arc`] to avoid the
    /// copy when the caller already holds an `Arc<Trace>`.
    pub fn new(trace: &Trace, config: &MachineConfig) -> PreparedTrace {
        Self::from_arc(Arc::new(trace.clone()), config)
    }

    /// Precomputes everything `simulate` needs, without copying the trace.
    pub fn from_arc(trace: Arc<Trace>, config: &MachineConfig) -> PreparedTrace {
        let dataflow = Arc::new(trace.dataflow());
        let pc_index = Arc::new(trace.pc_index());
        Self::with_oracles(trace, dataflow, pc_index, config)
    }

    /// Builds a prepared trace from already-computed config-independent
    /// oracles, computing only the branch-prediction replay (the sole
    /// config-dependent part; see [`MachineConfig::predictor_key`]).
    pub fn with_oracles(
        trace: Arc<Trace>,
        dataflow: Arc<Dataflow>,
        pc_index: Arc<PcIndex>,
        config: &MachineConfig,
    ) -> PreparedTrace {
        let predictions = Arc::new(PredictionTrace::compute(&trace, config));
        let consumers = Arc::new(ConsumerIndex::build(&dataflow, &trace));
        PreparedTrace {
            trace,
            dataflow,
            pc_index,
            predictions,
            consumers,
        }
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Shared ownership of the trace being replayed.
    pub fn trace_arc(&self) -> Arc<Trace> {
        Arc::clone(&self.trace)
    }

    /// Oracle dataflow (register and memory producers).
    pub fn dataflow(&self) -> &Dataflow {
        &self.dataflow
    }

    /// Shared ownership of the dataflow oracle.
    pub fn dataflow_arc(&self) -> Arc<Dataflow> {
        Arc::clone(&self.dataflow)
    }

    /// Dynamic occurrences of each static PC.
    pub fn pc_index(&self) -> &PcIndex {
        &self.pc_index
    }

    /// Shared ownership of the PC occurrence index.
    pub fn pc_index_arc(&self) -> Arc<PcIndex> {
        Arc::clone(&self.pc_index)
    }

    /// Replayed branch-prediction outcomes.
    pub fn predictions(&self) -> &PredictionTrace {
        &self.predictions
    }

    /// Inverted dataflow (who consumes each instruction's results).
    pub(crate) fn consumers(&self) -> &ConsumerIndex {
        &self.consumers
    }
}

/// Knobs of the simulation loop that do not model hardware — they change
/// how the run executes, never what it computes. Every option preserves
/// bit-identical [`SimResult`]s and event streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Fast-forward over cycles on which provably nothing can happen,
    /// charging the accounting buckets in bulk (on by default). Turning
    /// it off forces stepped execution — useful for differential tests
    /// and as a reference when debugging the skip logic itself.
    pub cycle_skip: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { cycle_skip: true }
    }
}

/// How a run executed (not what it computed): stepped vs fast-forwarded
/// cycle counts. Returned by [`try_simulate_opts`]; purely observational.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimTelemetry {
    /// Cycles advanced in bulk by the cycle-skip fast path.
    pub skipped_cycles: u64,
    /// Cycles executed by a full pass through the pipeline stages.
    pub executed_cycles: u64,
    /// Number of fast-forward jumps taken.
    pub fast_forwards: u64,
}

/// Reusable simulation buffers.
///
/// One [`simulate`] call over an `n`-instruction trace allocates the
/// per-instruction state table (the dominant allocation — tens of
/// megabytes for the bundled workloads), the scheduler/divert/task
/// vectors, and the feedback hash maps. A sweep that replays the same
/// traces under many policies pays that cost for every cell; passing a
/// `SimScratch` to [`simulate_with`] instead recycles the buffers from
/// run to run (each worker thread of the parallel sweep harness keeps
/// one). Results are bit-identical with or without scratch reuse — every
/// buffer is fully reset before use.
#[derive(Debug, Default)]
pub struct SimScratch {
    inst: InstTable,
    tasks: Vec<Task>,
    sched: Vec<u32>,
    divert: Vec<u32>,
    ready: Vec<u32>,
    ready_set: Vec<u32>,
    wake_heap: BinaryHeap<Reverse<(u64, u32)>>,
    wake_next: Vec<u32>,
    sched_slot: Vec<u32>,
    winners: Vec<(usize, usize)>,
    cycle_buckets: Vec<Bucket>,
    profit: std::collections::HashMap<polyflow_isa::Pc, (i8, u32)>,
    hints: std::collections::HashMap<polyflow_isa::Pc, (Vec<polyflow_isa::Reg>, bool)>,
}

impl SimScratch {
    /// Pre-sizes the per-instruction arenas for an `n`-instruction trace.
    /// Sweeps call this once per [`PreparedTrace`] so the dominant
    /// allocations happen before the first run instead of growing during
    /// it; purely an allocation hint, results are unaffected.
    pub fn reserve(&mut self, n: usize) {
        self.inst.reserve(n);
    }
}

/// Per-instruction pipeline state in struct-of-arrays layout: the issue
/// and divert scans read one dense `u64`/`u8` lane each instead of
/// striding over 40-byte structs.
#[derive(Debug, Default)]
struct InstTable {
    /// Cycle fetched (`NOT_YET` while unfetched).
    fetched_at: Vec<u64>,
    /// Cycle dispatched (`NOT_YET` while undispatched).
    dispatched_at: Vec<u64>,
    /// Completion cycle (`NOT_YET` while unissued).
    done_at: Vec<u64>,
    /// Start index of the owning task at dispatch/fetch time.
    task_start: Vec<u32>,
    /// `F_*` bits.
    flags: Vec<u8>,
}

impl InstTable {
    /// Resets every lane to the unfetched state for an `n`-entry trace.
    fn reset(&mut self, n: usize) {
        self.fetched_at.clear();
        self.fetched_at.resize(n, NOT_YET);
        self.dispatched_at.clear();
        self.dispatched_at.resize(n, NOT_YET);
        self.done_at.clear();
        self.done_at.resize(n, NOT_YET);
        self.task_start.clear();
        self.task_start.resize(n, 0);
        self.flags.clear();
        self.flags.resize(n, 0);
    }

    fn reserve(&mut self, n: usize) {
        self.fetched_at
            .reserve(n.saturating_sub(self.fetched_at.len()));
        self.dispatched_at
            .reserve(n.saturating_sub(self.dispatched_at.len()));
        self.done_at.reserve(n.saturating_sub(self.done_at.len()));
        self.task_start
            .reserve(n.saturating_sub(self.task_start.len()));
        self.flags.reserve(n.saturating_sub(self.flags.len()));
    }

    /// Clears one instruction back to unfetched (squash/reclaim ranges).
    #[inline]
    fn reset_one(&mut self, i: usize) {
        self.fetched_at[i] = NOT_YET;
        self.dispatched_at[i] = NOT_YET;
        self.done_at[i] = NOT_YET;
        self.task_start[i] = 0;
        self.flags[i] = 0;
    }

    #[inline(always)]
    fn flag(&self, i: usize, f: u8) -> bool {
        self.flags[i] & f != 0
    }

    /// Both register-slot speculation bits, in slot order.
    #[inline(always)]
    fn reg_speculative(&self, i: usize) -> [bool; 2] {
        [self.flag(i, F_REG_SPEC0), self.flag(i, F_REG_SPEC1)]
    }
}

/// Why a task's fetch is parked until [`Task::fetch_resume_at`]: the
/// cycle-accounting layer attributes the wait to the matching bucket (the
/// seed lumped all three causes into `fetch_stall_icache_cycles`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResumeKind {
    /// Instruction-cache fill in progress.
    Icache,
    /// Post-squash recovery penalty.
    Squash,
    /// Task Spawn Unit context setup for a fresh task.
    Spawn,
}

#[derive(Debug)]
struct Task {
    start: u32,
    end: u32,
    fetch_next: u32,
    fetch_resume_at: u64,
    waiting_branch: Option<u32>,
    fq: VecDeque<u32>,
    inflight: usize,
    last_fetch_line: u64,
    /// Dynamic task uid — index into [`CycleAccount::tasks`].
    uid: u32,
    /// This task's instructions currently sitting in the divert queue.
    divert_count: u32,
    /// Why fetch is parked until `fetch_resume_at`.
    resume_reason: ResumeKind,
    /// Cycle-accounting bucket recorded by this cycle's fetch stage, if
    /// fetch stalled (cleared by the end-of-cycle accounting pass).
    stall_flag: Option<Bucket>,
    /// Structural-contention marker for this cycle: dispatch or fetch hit
    /// a full resource (cleared by the accounting pass).
    blocked: bool,
    /// The stall episode currently open for this task in the event
    /// stream (drives `StallBegin`/`StallEnd` emission; tracked only
    /// when tracing is enabled).
    active_stall: Option<Bucket>,
    /// Trigger PC of the spawn this task performed as tail, if any; used
    /// by the profitability feedback.
    spawn_trigger: Option<polyflow_isa::Pc>,
    /// Trigger PC of the spawn that *created* this task (None for the
    /// initial task); keys the hint-entry register set.
    created_by: Option<polyflow_isa::Pc>,
    /// After a dependence-violation squash the task refetches in safe
    /// mode: every inter-task register dependence synchronizes, whether or
    /// not the hint entry names it. Prevents livelock when the entry's
    /// capacity cannot cover the task's dependence set.
    safe_mode: bool,
    /// Fetch-stall cycles accumulated since this task spawned.
    stall_since_spawn: u64,
    /// Whether the spawn's profitability has been evaluated.
    profit_evaluated: bool,
}

impl Task {
    fn new(start: u32) -> Task {
        Task {
            start,
            end: OPEN_END,
            fetch_next: start,
            fetch_resume_at: 0,
            waiting_branch: None,
            fq: VecDeque::new(),
            inflight: 0,
            last_fetch_line: u64::MAX,
            uid: 0,
            divert_count: 0,
            resume_reason: ResumeKind::Icache,
            stall_flag: None,
            blocked: false,
            active_stall: None,
            spawn_trigger: None,
            created_by: None,
            safe_mode: false,
            stall_since_spawn: 0,
            profit_evaluated: false,
        }
    }
}

/// The cycle-level machine. Create one per run via [`simulate`].
struct Machine<'a> {
    cfg: &'a MachineConfig,
    trace: &'a Trace,
    dataflow: &'a Dataflow,
    pc_index: &'a PcIndex,
    predictions: &'a PredictionTrace,
    consumers: &'a ConsumerIndex,
    hier: Hierarchy,
    inst: InstTable,
    tasks: Vec<Task>,
    retire_ptr: usize,
    rob_used: usize,
    sched: Vec<u32>,
    divert: Vec<u32>,
    /// Per-cycle ready-list buffer, reused across `issue` calls.
    ready: Vec<u32>,
    /// Scheduler entries that are ready now but not yet issued, sorted
    /// ascending (oldest first). Maintained event-wise: completions wake
    /// their consumers, new entries insert at enqueue time, and a full
    /// rebuild runs only while `sched_dirty` (after squash/reclaim).
    ready_set: Vec<u32>,
    /// Pending wakeups `(cycle, entry)`: the entry may become ready at
    /// that cycle. Wakes may be stale (the entry left the scheduler, or
    /// its ready-at moved) — they re-validate when popped.
    wake_heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Wakeups due exactly next cycle — the overwhelmingly common case
    /// (single-cycle ALU/store/L1-hit latencies). A flat buffer drained
    /// at the next issue call, skipping the heap round-trip. Every push
    /// site also marks activity, so the buffer is provably empty on any
    /// cycle the fast-forward inspects.
    wake_next: Vec<u32>,
    /// Position of each in-scheduler instruction inside `sched` (valid
    /// only while its `F_IN_SCHED` bit is set): lets issue remove a
    /// batch in O(batch) swap-removes instead of an O(scheduler) retain
    /// every issuing cycle.
    sched_slot: Vec<u32>,
    /// A violation left issued entries behind in the scheduler (the
    /// re-issue quirk); the next successful issue sweeps any that did
    /// not re-issue, exactly like the stepped scan's retain did.
    sched_residue: bool,
    /// Per-cycle fetch schedule `(task index, inflight key)`, reused
    /// across `fetch` calls.
    winners: Vec<(usize, usize)>,
    cycle: u64,
    stats: SimResult,
    last_retire_cycle: u64,
    /// Profitability feedback state per trigger PC: a saturating counter
    /// (0..=PROFIT_MAX, optimistically initialized) and a suppression
    /// count used to periodically probe throttled spawn points.
    profit: std::collections::HashMap<polyflow_isa::Pc, (i8, u32)>,
    /// Store-set memory-dependence predictor (store-set mode only).
    ssit: StoreSetPredictor,
    /// Consecutive cycles the oldest task has been blocked on a full ROB
    /// (drives the §6 reclamation extension).
    rob_blocked_streak: u64,
    /// Per-spawn-point register hint entries (hint-entry model): which
    /// architectural registers tasks from this trigger synchronize on,
    /// plus a saturation flag — once the dependence set overflows the
    /// entry, tasks from this trigger synchronize *everything* (they
    /// start in safe mode).
    hints: std::collections::HashMap<polyflow_isa::Pc, (Vec<polyflow_isa::Reg>, bool)>,
    /// The run's cycle-slot ledger (always on; see `crate::account`).
    account: CycleAccount,
    /// Structured-event consumer.
    sink: &'a mut dyn TraceSink,
    /// Cached `sink.enabled()`: when false, events only reach the
    /// post-mortem ring.
    trace_on: bool,
    /// Always-on flight recorder: the last [`EVENT_RING`] events, for
    /// [`SimError::Livelock`] post-mortems.
    ring: VecDeque<SimEvent>,
    /// Execution options (cycle skipping).
    opts: SimOptions,
    /// Stepped-vs-skipped cycle counts for this run.
    telemetry: SimTelemetry,
    /// Whether any machine state changed this cycle. A cycle that ends
    /// with this false will repeat identically until the next scheduled
    /// event, which is what licenses the fast-forward.
    activity: bool,
    /// The oldest task hit the ROB limit during this cycle's dispatch
    /// (feeds the reclamation countdown into the fast-forward).
    rob_blocked_this_cycle: bool,
    /// Earliest cycle any scheduler entry could become ready, valid when
    /// `!sched_dirty` (`NOT_YET` = never without a new event).
    sched_next_ready: u64,
    /// The scheduler scan must run: membership or producer completion
    /// times changed since `sched_next_ready` was computed.
    sched_dirty: bool,
    /// Earliest cycle any divert entry's release gate opens, valid when
    /// `!divert_dirty` and the scan was not truncated by a full scheduler.
    divert_next_release: u64,
    /// The divert scan must run: membership, dispatch times, or divert
    /// flags changed since `divert_next_release` was computed.
    divert_dirty: bool,
    /// This cycle's per-task bucket classification, captured by
    /// `account_cycle` in task order for bulk replay by `fast_forward`.
    cycle_buckets: Vec<Bucket>,
    /// Per-phase wall-clock timers (`POLYFLOW_SIM_PROFILE`).
    prof: Option<Box<PhaseProfile>>,
}

/// Runs `prepared` through the machine described by `config`, spawning
/// tasks according to `source`. Returns the run's statistics.
///
/// # Panics
///
/// Panics on any [`SimError`]: a malformed trace, a tripped watchdog
/// ([`MachineConfig::max_cycles`] / [`MachineConfig::livelock_window`]),
/// or a broken internal invariant. Callers that need graceful failure
/// use [`try_simulate`].
pub fn simulate(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
) -> SimResult {
    simulate_with(prepared, config, source, &mut SimScratch::default())
}

/// [`simulate`], but recycling the run's buffers through `scratch`.
///
/// Semantically identical to `simulate` — the scratch only donates
/// allocations (every buffer is cleared and resized before use) and
/// receives them back when the run finishes. Sweeps that replay the same
/// traces under many policies should keep one `SimScratch` per worker
/// thread and pass it to every cell.
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_with(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
    scratch: &mut SimScratch,
) -> SimResult {
    simulate_traced(prepared, config, source, scratch, &mut NullSink)
}

/// [`simulate_with`], additionally streaming structured [`SimEvent`]s to
/// `sink` (see `crate::events`).
///
/// Event emission never feeds back into simulation state, so the
/// returned [`SimResult`] is bit-identical for every sink; with the
/// default [`NullSink`] (`enabled() == false`) events only reach the
/// internal post-mortem ring.
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_traced(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
    scratch: &mut SimScratch,
    sink: &mut dyn TraceSink,
) -> SimResult {
    match try_simulate_traced(prepared, config, source, scratch, sink) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`simulate`]: watchdog trips, malformed traces, and broken
/// internal invariants surface as a typed [`SimError`] instead of a
/// panic.
pub fn try_simulate(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
) -> Result<SimResult, SimError> {
    try_simulate_with(prepared, config, source, &mut SimScratch::default())
}

/// Fallible [`simulate_with`].
pub fn try_simulate_with(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
    scratch: &mut SimScratch,
) -> Result<SimResult, SimError> {
    try_simulate_traced(prepared, config, source, scratch, &mut NullSink)
}

/// Fallible [`simulate_traced`]: the trace is structurally validated up
/// front ([`Trace::validate`] → [`SimError::MalformedTrace`]), the
/// watchdogs in [`MachineConfig`] bound the run, and every formerly
/// panicking invariant site returns [`SimError::BrokenInvariant`].
///
/// On `Err` the scratch buffers donated to the run are *not* returned
/// (the next run through the same scratch simply reallocates); results
/// on `Ok` remain bit-identical with or without scratch reuse.
pub fn try_simulate_traced(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
    scratch: &mut SimScratch,
    sink: &mut dyn TraceSink,
) -> Result<SimResult, SimError> {
    Ok(try_simulate_opts(
        prepared,
        config,
        source,
        scratch,
        sink,
        SimOptions::default(),
    )?
    .0)
}

/// [`try_simulate_traced`] with explicit [`SimOptions`], additionally
/// returning the run's [`SimTelemetry`] (how many cycles were
/// fast-forwarded vs stepped). The options never change the result —
/// `cycle_skip` on and off produce bit-identical [`SimResult`]s and
/// event streams.
pub fn try_simulate_opts(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
    scratch: &mut SimScratch,
    sink: &mut dyn TraceSink,
    opts: SimOptions,
) -> Result<(SimResult, SimTelemetry), SimError> {
    let n = prepared.trace.len();
    if n == 0 {
        return Ok((SimResult::default(), SimTelemetry::default()));
    }
    prepared.trace().validate()?;
    let mut inst = std::mem::take(&mut scratch.inst);
    inst.reset(n);
    let mut tasks = std::mem::take(&mut scratch.tasks);
    tasks.clear();
    tasks.push(Task::new(0));
    let mut sched = std::mem::take(&mut scratch.sched);
    sched.clear();
    sched.reserve(config.scheduler_entries);
    let mut divert = std::mem::take(&mut scratch.divert);
    divert.clear();
    let mut ready = std::mem::take(&mut scratch.ready);
    ready.clear();
    let mut ready_set = std::mem::take(&mut scratch.ready_set);
    ready_set.clear();
    let mut wake_heap = std::mem::take(&mut scratch.wake_heap);
    wake_heap.clear();
    let mut wake_next = std::mem::take(&mut scratch.wake_next);
    wake_next.clear();
    let mut sched_slot = std::mem::take(&mut scratch.sched_slot);
    sched_slot.clear();
    sched_slot.resize(n, 0);
    let mut winners = std::mem::take(&mut scratch.winners);
    winners.clear();
    let mut cycle_buckets = std::mem::take(&mut scratch.cycle_buckets);
    cycle_buckets.clear();
    let mut profit = std::mem::take(&mut scratch.profit);
    profit.clear();
    let mut hints = std::mem::take(&mut scratch.hints);
    hints.clear();
    let mut m = Machine {
        cfg: config,
        trace: prepared.trace(),
        dataflow: prepared.dataflow(),
        pc_index: prepared.pc_index(),
        predictions: prepared.predictions(),
        consumers: prepared.consumers(),
        hier: Hierarchy::new(config),
        inst,
        tasks,
        retire_ptr: 0,
        rob_used: 0,
        sched,
        divert,
        ready,
        ready_set,
        wake_heap,
        wake_next,
        sched_slot,
        sched_residue: false,
        winners,
        cycle: 0,
        stats: SimResult::default(),
        last_retire_cycle: 0,
        profit,
        ssit: StoreSetPredictor::new(config.store_set_index_bits),
        rob_blocked_streak: 0,
        hints,
        account: CycleAccount::new(config.max_tasks),
        trace_on: sink.enabled(),
        sink,
        ring: VecDeque::with_capacity(EVENT_RING),
        opts,
        telemetry: SimTelemetry::default(),
        activity: false,
        rob_blocked_this_cycle: false,
        sched_next_ready: 0,
        sched_dirty: true,
        divert_next_release: 0,
        divert_dirty: true,
        cycle_buckets,
        prof: PhaseProfile::from_env(),
    };
    let run = m.run(source);
    let telemetry = m.telemetry;
    let finish = m.finish_into(scratch);
    run?;
    Ok((finish?, telemetry))
}

/// Fixed-capacity biased-ICount selection: keeps the `cap` best
/// `(task index, key)` candidates sorted by key, older task winning
/// ties (insertion order is task order and equal keys insert *after*
/// existing ones, so the result matches a stable sort by key). Returns
/// the task index that lost arbitration by this insertion, if any.
#[inline]
fn icount_insert(
    winners: &mut Vec<(usize, usize)>,
    cap: usize,
    ti: usize,
    key: usize,
) -> Option<usize> {
    let pos = winners.partition_point(|&(_, k)| k <= key);
    if winners.len() < cap {
        winners.insert(pos, (ti, key));
        None
    } else if pos < cap {
        let evicted = winners.pop().map(|(t, _)| t);
        winners.insert(pos, (ti, key));
        evicted
    } else {
        Some(ti)
    }
}

impl Machine<'_> {
    fn run(&mut self, source: &mut dyn SpawnSource) -> Result<(), SimError> {
        let n = self.trace.len();
        let retire_hook = source.wants_retire();
        while self.retire_ptr < n {
            self.activity = false;
            self.rob_blocked_this_cycle = false;
            let mut mark = self.prof_mark();
            self.retire(source, retire_hook);
            self.prof_lap(&mut mark, phase::RETIRE);
            if self.retire_ptr >= n {
                break;
            }
            self.issue()?;
            self.prof_lap(&mut mark, phase::ISSUE);
            self.drain_divert()?;
            self.prof_lap(&mut mark, phase::DIVERT);
            self.dispatch();
            // §6 extension: reclaim ROB entries from the youngest task if
            // the oldest has been starved long enough.
            if self.cfg.rob_reclamation
                && self.rob_blocked_streak >= self.cfg.rob_reclaim_after
                && self.tasks.len() > 1
            {
                self.reclaim_youngest()?;
                self.rob_blocked_streak = 0;
            }
            self.prof_lap(&mut mark, phase::DISPATCH);
            self.fetch(source);
            self.prof_lap(&mut mark, phase::FETCH);
            self.account_cycle();
            if self.opts.cycle_skip && !self.activity {
                self.fast_forward();
            }
            self.prof_lap(&mut mark, phase::ACCOUNT);
            self.telemetry.executed_cycles += 1;
            self.cycle += 1;
            if self.cycle - self.last_retire_cycle >= self.cfg.livelock_window {
                return Err(self.livelock_error());
            }
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::CyclesExceeded {
                    max_cycles: self.cfg.max_cycles,
                    retired: self.retire_ptr as u64,
                    instructions: n as u64,
                });
            }
        }
        Ok(())
    }

    /// Starts a per-phase timing lap (profiling runs only).
    #[inline]
    fn prof_mark(&self) -> Option<Instant> {
        self.prof.as_ref().map(|_| Instant::now())
    }

    /// Closes the current lap into phase `idx` and starts the next one.
    #[inline]
    fn prof_lap(&mut self, mark: &mut Option<Instant>, idx: usize) {
        if let Some(m) = mark {
            let now = Instant::now();
            if let Some(p) = &mut self.prof {
                p.spans[idx] += now - *m;
            }
            *m = now;
        }
    }

    /// Computes the earliest future cycle at which anything can happen
    /// and jumps just short of it in one step, charging the intervening
    /// idle cycles' account slots (and their paired stall counters) in
    /// bulk. Only called when the cycle just executed changed no machine
    /// state, so every live task's bucket classification — captured by
    /// `account_cycle` in `cycle_buckets` — holds verbatim across the
    /// span, no events are due, and both watchdogs trip on exactly the
    /// cycles stepped execution would trip on (DESIGN.md §13 carries the
    /// completeness argument for the candidate set).
    fn fast_forward(&mut self) {
        let c = self.cycle;
        let mut next = NOT_YET;
        let mut consider = |at: u64| {
            if at < next {
                next = at;
            }
        };
        // ROB-head completion unblocks retirement.
        let head = self.inst.done_at[self.retire_ptr];
        if head != NOT_YET {
            consider(head);
        }
        // Scheduler wakeup. The cached earliest ready-at is exact on an
        // idle cycle: issue() always leaves it clean when nothing issues
        // (and the next-cycle wake buffer is provably empty — every push
        // site marks activity, which blocks the fast-forward).
        debug_assert!(self.wake_next.is_empty());
        if !self.sched.is_empty() {
            debug_assert!(!self.sched_dirty);
            consider(self.sched_next_ready);
        }
        // Divert release gate — only relevant while the scheduler has
        // room (a full scheduler blocks release regardless, and frees via
        // the scheduler wakeup above). A scan truncated before completing
        // (zero-width configs) leaves the bound dirty: bail out and step.
        if !self.divert.is_empty() && self.sched.len() < self.cfg.scheduler_entries {
            if self.divert_dirty {
                return;
            }
            consider(self.divert_next_release);
        }
        let n = self.trace.len() as u32;
        for t in &self.tasks {
            // Decode completion of the fetch-queue head enables dispatch.
            if let Some(&front) = t.fq.front() {
                let at = self.inst.fetched_at[front as usize] + self.cfg.decode_latency;
                if at > c {
                    consider(at);
                }
            }
            if t.fetch_next >= t.end.min(n) {
                continue;
            }
            // Branch resolution reopens this task's fetch.
            if let Some(b) = t.waiting_branch {
                let done = self.inst.done_at[b as usize];
                if done != NOT_YET {
                    let resume = self.inst.fetched_at[b as usize] + self.cfg.misprediction_penalty;
                    consider(done.max(resume));
                }
                continue;
            }
            // Icache fill / squash recovery / spawn setup elapses.
            if c < t.fetch_resume_at {
                consider(t.fetch_resume_at);
            }
        }
        // ROB reclamation countdown (§6 extension): the blocked streak
        // grows by one per idle cycle until it reaches the threshold.
        if self.cfg.rob_reclamation && self.rob_blocked_this_cycle && self.tasks.len() > 1 {
            consider(
                c + self
                    .cfg
                    .rob_reclaim_after
                    .saturating_sub(self.rob_blocked_streak),
            );
        }
        // Never jump past a watchdog: both must trip at exactly the
        // cycle stepped execution would trip on, with identical state.
        let cap = self
            .last_retire_cycle
            .saturating_add(self.cfg.livelock_window)
            .min(self.cfg.max_cycles);
        let until = next.min(cap);
        if until == NOT_YET {
            // Nothing scheduled and no finite watchdog: spin exactly as
            // stepped execution would.
            return;
        }
        let k = until.saturating_sub(c + 1);
        if k == 0 {
            return;
        }
        debug_assert_eq!(self.cycle_buckets.len(), self.tasks.len());
        for (ti, &bucket) in self.cycle_buckets.iter().enumerate() {
            let t = &mut self.tasks[ti];
            self.account.charge_many(t.uid, bucket, k);
            // Keep the paired stats counters in lockstep with their
            // buckets, exactly as the per-cycle fetch stage would have.
            match bucket {
                Bucket::BranchStall => {
                    self.stats.fetch_stall_branch_cycles += k;
                    t.stall_since_spawn += k;
                }
                Bucket::IcacheStall => {
                    self.stats.fetch_stall_icache_cycles += k;
                    t.stall_since_spawn += k;
                }
                Bucket::SquashRecovery => {
                    self.stats.squash_recovery_cycles += k;
                    t.stall_since_spawn += k;
                }
                Bucket::SpawnSetup => {
                    self.stats.spawn_setup_cycles += k;
                    t.stall_since_spawn += k;
                }
                _ => {}
            }
        }
        self.account
            .charge_idle(self.cfg.max_tasks.saturating_sub(self.tasks.len()) as u64 * k);
        if self.rob_blocked_this_cycle {
            self.rob_blocked_streak += k;
        }
        self.cycle += k;
        self.telemetry.skipped_cycles += k;
        self.telemetry.fast_forwards += 1;
    }

    /// Assembles the [`SimError::Livelock`] post-mortem: the stuck
    /// instruction's state, its owner task, the scheduler/divert heads,
    /// the cycle-slot ledger, and the recent event ring.
    fn livelock_error(&self) -> SimError {
        let i = self.retire_ptr;
        let owner = self
            .tasks
            .iter()
            .enumerate()
            .find(|(_, t)| t.start as usize <= self.retire_ptr && (self.retire_ptr as u32) < t.end)
            .map(|(i, t)| {
                format!(
                    "task {i} [{}..{}) fetch_next {} fq {} wait {:?} resume {} safe {}",
                    t.start,
                    t.end,
                    t.fetch_next,
                    t.fq.len(),
                    t.waiting_branch,
                    t.fetch_resume_at,
                    t.safe_mode
                )
            })
            .unwrap_or_else(|| "NO TASK".into());
        let mut dump = String::new();
        for &idx in self.sched.iter().take(6) {
            let prods: Vec<String> = self
                .producers(idx as usize)
                .map(|p| {
                    let pi = p as usize;
                    format!(
                        "{p}(d{} v{} done{})",
                        self.inst.flag(pi, F_DISPATCHED) as u8,
                        self.inst.flag(pi, F_IN_DIVERT) as u8,
                        (self.inst.done_at[pi] <= self.cycle) as u8
                    )
                })
                .collect();
            dump.push_str(&format!(
                "  sched {idx} spec{:?}/{} <- {:?}\n",
                self.inst.reg_speculative(idx as usize),
                self.inst.flag(idx as usize, F_MEM_SPEC) as u8,
                prods
            ));
        }
        for &idx in self.divert.iter().take(4) {
            dump.push_str(&format!("  divert {idx}\n"));
        }
        let detail = format!(
            "retire_ptr {}, rob {}, sched {}, divert {}, tasks {}\nstuck inst: fetched_at {} dispatched {} in_divert {} issued {} done_at {} spec {:?}/{}\nowner: {owner}\n{dump}",
            self.retire_ptr, self.rob_used, self.sched.len(),
            self.divert.len(), self.tasks.len(),
            self.inst.fetched_at[i], self.inst.flag(i, F_DISPATCHED),
            self.inst.flag(i, F_IN_DIVERT), self.inst.flag(i, F_ISSUED),
            self.inst.done_at[i],
            self.inst.reg_speculative(i), self.inst.flag(i, F_MEM_SPEC),
        );
        let mut account = self.account.clone();
        account.cycles = self.cycle;
        SimError::Livelock {
            cycle: self.cycle,
            window: self.cfg.livelock_window,
            retired: self.retire_ptr as u64,
            account: Box::new(account),
            recent_events: self.ring.iter().copied().collect(),
            detail,
        }
    }

    /// Records `ev` in the always-on post-mortem ring and forwards it to
    /// the sink when tracing is enabled. Never feeds back into timing.
    fn record(&mut self, ev: SimEvent) {
        if self.ring.len() == EVENT_RING {
            self.ring.pop_front();
        }
        self.ring.push_back(ev);
        if self.trace_on {
            self.sink.event(&ev);
        }
    }

    /// End-of-cycle accounting: charges one cycle-slot per context to
    /// exactly one [`Bucket`] (see `crate::account` for the taxonomy and
    /// priority), and emits `StallBegin`/`StallEnd` events on episode
    /// transitions when tracing is enabled. Pure bookkeeping — never
    /// feeds back into timing. The per-task classification is also
    /// captured into `cycle_buckets` for bulk replay by `fast_forward`.
    fn account_cycle(&mut self) {
        let live = self.tasks.len();
        self.cycle_buckets.clear();
        for ti in 0..live {
            let (uid, bucket, prev, cur) = {
                let t = &mut self.tasks[ti];
                let bucket = if let Some(b) = t.stall_flag {
                    b
                } else if t.divert_count > 0 {
                    Bucket::DivertWait
                } else if t.blocked {
                    Bucket::Contention
                } else {
                    Bucket::Retire
                };
                t.stall_flag = None;
                t.blocked = false;
                let prev = t.active_stall;
                let cur = if bucket.is_stall() {
                    Some(bucket)
                } else {
                    None
                };
                t.active_stall = cur;
                (t.uid, bucket, prev, cur)
            };
            self.cycle_buckets.push(bucket);
            self.account.charge(uid, bucket);
            if prev != cur {
                if let Some(b) = prev {
                    self.record(SimEvent::StallEnd {
                        cycle: self.cycle,
                        task: uid,
                        bucket: b,
                    });
                }
                if let Some(b) = cur {
                    self.record(SimEvent::StallBegin {
                        cycle: self.cycle,
                        task: uid,
                        bucket: b,
                    });
                }
            }
        }
        self.account
            .charge_idle(self.cfg.max_tasks.saturating_sub(live) as u64);
    }

    fn finish_into(self, scratch: &mut SimScratch) -> Result<SimResult, SimError> {
        if let Some(p) = &self.prof {
            p.report(self.cycle, &self.telemetry);
        }
        let mut stats = self.stats;
        stats.cycles = self.cycle.max(1);
        stats.instructions = self.trace.len() as u64;
        let mut account = self.account;
        account.cycles = self.cycle;
        // Always-on (not just debug): `sum(buckets) == cycles × contexts`
        // is the fuzz harness's core invariant, and one pass over the
        // bucket array is noise next to the run itself.
        let check = account.check();
        stats.account = account;
        stats.branch_mispredicts = self.predictions.cond_mispredicts();
        stats.indirect_mispredicts = self.predictions.indirect_mispredicts();
        stats.l1i_misses = self.hier.l1i().misses();
        stats.l1d_misses = self.hier.l1d().misses();
        stats.l2_misses = self.hier.l2().misses();
        scratch.inst = self.inst;
        scratch.tasks = self.tasks;
        scratch.sched = self.sched;
        scratch.divert = self.divert;
        scratch.ready = self.ready;
        scratch.ready_set = self.ready_set;
        scratch.wake_heap = self.wake_heap;
        scratch.wake_next = self.wake_next;
        scratch.sched_slot = self.sched_slot;
        scratch.winners = self.winners;
        scratch.cycle_buckets = self.cycle_buckets;
        scratch.profit = self.profit;
        scratch.hints = self.hints;
        match check {
            Ok(()) => Ok(stats),
            Err(detail) => Err(SimError::AccountingViolation { detail }),
        }
    }

    /// All producers of `idx` (register sources plus, for loads, the
    /// producing store).
    fn producers(&self, idx: usize) -> impl Iterator<Item = u32> + '_ {
        let [a, b] = self.dataflow.reg_producers(idx);
        let m = self.dataflow.mem_producer(idx);
        [a, b, m].into_iter().flatten()
    }

    // ---- retire ------------------------------------------------------------

    fn retire(&mut self, source: &mut dyn SpawnSource, retire_hook: bool) {
        let n = self.trace.len();
        let mut retired = 0;
        while retired < self.cfg.width && self.retire_ptr < n {
            let i = self.retire_ptr;
            if !(self.inst.flag(i, F_DISPATCHED) && self.inst.done_at[i] <= self.cycle) {
                break;
            }
            if retire_hook {
                source.on_retire(self.trace.entry(i));
            }
            self.rob_used -= 1;
            self.tasks[0].inflight -= 1;
            self.retire_ptr += 1;
            retired += 1;
            self.last_retire_cycle = self.cycle;
            // Pop tasks whose interval is fully retired.
            while self.tasks.len() > 1 && self.retire_ptr as u32 >= self.tasks[0].end {
                debug_assert_eq!(self.tasks[0].inflight, 0);
                self.tasks.remove(0);
            }
        }
        if retired > 0 {
            self.activity = true;
            self.record(SimEvent::RetireBatch {
                cycle: self.cycle,
                count: retired as u32,
                retire_ptr: self.retire_ptr as u32,
            });
        }
    }

    // ---- issue ---------------------------------------------------------------

    /// The cycle at which scheduler entry `i` becomes ready: the max
    /// completion time over its non-speculative producer slots
    /// (speculative slots never gate readiness; an unissued producer
    /// contributes `NOT_YET` — the entry is woken by the consumer walk
    /// when that producer issues).
    #[inline]
    fn ready_at(&self, i: usize) -> u64 {
        let [ra, rb] = self.dataflow.reg_producers(i);
        let mem = self.dataflow.mem_producer(i);
        let f = self.inst.flags[i];
        let slot_at = |p: Option<u32>, spec: bool| -> u64 {
            if spec {
                0
            } else {
                p.map(|p| self.inst.done_at[p as usize]).unwrap_or(0)
            }
        };
        slot_at(ra, f & F_REG_SPEC0 != 0)
            .max(slot_at(rb, f & F_REG_SPEC1 != 0))
            .max(slot_at(mem, f & F_MEM_SPEC != 0))
    }

    /// Inserts `idx` into the sorted ready set (idempotent — wakeups can
    /// duplicate when an entry is already ready through a speculative
    /// slot).
    #[inline]
    fn ready_insert(&mut self, idx: u32) {
        let pos = self.ready_set.partition_point(|&x| x < idx);
        if self.ready_set.get(pos) != Some(&idx) {
            self.ready_set.insert(pos, idx);
        }
    }

    /// Appends `idx` to the scheduler, recording its position for the
    /// O(batch) removal in issue.
    #[inline]
    fn sched_push(&mut self, idx: u32) {
        self.sched_slot[idx as usize] = self.sched.len() as u32;
        self.sched.push(idx);
    }

    /// Removes `idx` from the scheduler by its recorded position.
    #[inline]
    fn sched_swap_remove(&mut self, idx: u32) {
        let pos = self.sched_slot[idx as usize] as usize;
        debug_assert_eq!(self.sched.get(pos), Some(&idx));
        if let Some(last) = self.sched.pop() {
            if last != idx {
                self.sched[pos] = last;
                self.sched_slot[last as usize] = pos as u32;
            }
        }
    }

    /// Restores the `sched_slot` position map after an order-preserving
    /// bulk removal (squash/reclaim retains, residue sweeps).
    fn sched_reindex(&mut self) {
        for k in 0..self.sched.len() {
            let i = self.sched[k] as usize;
            self.sched_slot[i] = k as u32;
        }
    }

    /// Wakeup bookkeeping for an entry that just entered the scheduler
    /// (dispatch or divert release): ready now → into the ready set,
    /// ready next cycle → the flat next-cycle buffer, ready later → a
    /// heap wake, waiting on an unissued producer → nothing (that
    /// producer's issue wakes it). With a dirty scheduler the next
    /// rebuild covers it instead.
    fn sched_entry_enqueued(&mut self, idx: u32) {
        if self.sched_dirty {
            return;
        }
        let at = self.ready_at(idx as usize);
        if at <= self.cycle {
            self.ready_insert(idx);
        } else if at == self.cycle + 1 {
            self.wake_next.push(idx);
        } else if at != NOT_YET {
            self.wake_heap.push(Reverse((at, idx)));
        }
    }

    /// Rebuilds the ready set and wakeup heap from a full scheduler scan.
    /// Runs only while `sched_dirty` — after a squash or reclamation, and
    /// at run start. This is also what preserves the post-violation
    /// re-issue semantics: entries that issued right before a violation
    /// stay in the scheduler, and the rebuild reconsiders them exactly as
    /// the stepped scan would.
    fn rebuild_ready(&mut self) {
        self.ready_set.clear();
        self.wake_heap.clear();
        self.wake_next.clear();
        for k in 0..self.sched.len() {
            let idx = self.sched[k];
            let at = self.ready_at(idx as usize);
            if at <= self.cycle {
                self.ready_set.push(idx);
            } else if at != NOT_YET {
                self.wake_heap.push(Reverse((at, idx)));
            }
        }
        self.ready_set.sort_unstable();
        self.sched_dirty = false;
        if let Some(p) = &mut self.prof {
            p.rebuilds += 1;
            p.rebuild_entries += self.sched.len() as u64;
        }
    }

    fn issue(&mut self) -> Result<(), SimError> {
        if self.sched_dirty {
            self.rebuild_ready();
        } else {
            // Drain due wakeups into the ready set. Stale wakes (the
            // entry left the scheduler, or its ready-at moved) simply
            // re-validate and drop or re-queue. The flat next-cycle
            // buffer first: its entries were pushed last cycle with a
            // due time of exactly this cycle.
            if !self.wake_next.is_empty() {
                let due = std::mem::take(&mut self.wake_next);
                if let Some(p) = &mut self.prof {
                    p.wakes_popped += due.len() as u64;
                }
                for &q in &due {
                    let qi = q as usize;
                    if self.inst.flags[qi] & (F_IN_SCHED | F_ISSUED) != F_IN_SCHED {
                        continue;
                    }
                    let now = self.ready_at(qi);
                    if now <= self.cycle {
                        self.ready_insert(q);
                    } else if now != NOT_YET {
                        self.wake_heap.push(Reverse((now, q)));
                    }
                }
                let mut due = due;
                due.clear();
                self.wake_next = due;
            }
            while let Some(&Reverse((at, q))) = self.wake_heap.peek() {
                if at > self.cycle {
                    break;
                }
                self.wake_heap.pop();
                if let Some(p) = &mut self.prof {
                    p.wakes_popped += 1;
                }
                let qi = q as usize;
                if self.inst.flags[qi] & (F_IN_SCHED | F_ISSUED) != F_IN_SCHED {
                    continue;
                }
                let now = self.ready_at(qi);
                if now <= self.cycle {
                    self.ready_insert(q);
                } else if now != NOT_YET {
                    self.wake_heap.push(Reverse((now, q)));
                }
            }
        }
        let lanes = self.cfg.fn_units.min(self.cfg.width);
        if lanes == 0 || self.ready_set.is_empty() {
            self.sched_next_ready = if self.ready_set.is_empty() {
                self.wake_heap
                    .peek()
                    .map(|&Reverse((at, _))| at)
                    .unwrap_or(NOT_YET)
            } else {
                // Ready entries but no lane to take them: the stepped
                // loop re-examines every cycle, so never fast-forward.
                self.cycle
            };
            return Ok(());
        }
        self.activity = true;
        if let Some(p) = &mut self.prof {
            p.issue_cycles += 1;
        }
        // Oldest `lanes` ready entries issue; the rest stay ready. The
        // batch is frozen here, exactly like the stepped scan's truncated
        // ready list (a violation mid-batch rebuilds everything anyway).
        let take = lanes.min(self.ready_set.len());
        let mut ready = std::mem::take(&mut self.ready);
        ready.clear();
        ready.extend(self.ready_set.drain(..take));
        let mut pos = 0;
        while pos < ready.len() {
            let idx = ready[pos];
            pos += 1;
            let i = idx as usize;
            // One flags load serves every check below: nothing between
            // here and the `F_ISSUED` write mutates this entry's flags
            // (the violation paths return early).
            let f = self.inst.flags[i];
            // A speculative load issuing before its true producer store is
            // a dependence violation: squash its task and all younger
            // tasks, train the predictor, and stop issuing this cycle
            // (younger scheduler entries may have just been squashed).
            if f & F_MEM_SPEC != 0 {
                if let Some(p) = self.dataflow.mem_producer(i) {
                    if self.inst.done_at[p as usize] > self.cycle {
                        let pc = self.trace.entry(i).pc;
                        self.ssit.train_violation(pc);
                        let r = self.squash_task_containing(idx);
                        if pos > 1 {
                            self.sched_residue = true;
                        }
                        self.ready = ready;
                        return r;
                    }
                }
            }
            // Register-dependence violation (hint-entry model): an
            // unsynchronized inter-task register source whose producer is
            // still in flight.
            if f & (F_REG_SPEC0 | F_REG_SPEC1) != 0 {
                let reg_spec = [f & F_REG_SPEC0 != 0, f & F_REG_SPEC1 != 0];
                let [ra, rb] = self.dataflow.reg_producers(i);
                let srcs = self.trace.entry(i).inst.srcs();
                for (slot, p) in [(0, ra), (1, rb)] {
                    if !reg_spec[slot] {
                        continue;
                    }
                    let Some(p) = p else { continue };
                    if self.inst.done_at[p as usize] > self.cycle {
                        self.stats.register_violations += 1;
                        self.train_hint(idx, srcs[slot]);
                        let r = self.squash_task_containing(idx);
                        if pos > 1 {
                            self.sched_residue = true;
                        }
                        self.ready = ready;
                        return r;
                    }
                }
            }
            let cons = self.consumers;
            let latency = match cons.meta[i] & K_ISSUE_MASK {
                K_LOAD => self.hier.access_data(cons.data_addr[i]),
                K_STORE => {
                    // Warm the line so later loads hit (implicit
                    // store-to-load forwarding through the L1).
                    self.hier.access_data(cons.data_addr[i]);
                    1
                }
                K_MUL => self.cfg.mul_latency,
                _ => 1,
            };
            let re_issue = f & F_ISSUED != 0;
            self.inst.flags[i] = f | F_ISSUED;
            let done = self.cycle + latency;
            self.inst.done_at[i] = done;
            // Event-driven wakeup: schedule a readiness check at this
            // completion for every consumer currently waiting in the
            // scheduler.
            if let Some(p) = &mut self.prof {
                p.issued += 1;
            }
            for &q in cons.of(i) {
                let qf = self.inst.flags[q as usize];
                if qf & (F_IN_SCHED | F_ISSUED) == F_IN_SCHED {
                    if done == self.cycle + 1 {
                        self.wake_next.push(q);
                    } else {
                        self.wake_heap.push(Reverse((done, q)));
                    }
                    if let Some(p) = &mut self.prof {
                        p.wakes_pushed += 1;
                    }
                    if re_issue {
                        // A post-violation re-issue moved this completion
                        // later; it may retract a consumer's readiness.
                        if let Ok(p) = self.ready_set.binary_search(&q) {
                            if self.ready_at(q as usize) > self.cycle {
                                self.ready_set.remove(p);
                            }
                        }
                    }
                }
            }
        }
        // The whole batch issued: remove exactly those entries in
        // O(batch) swap-removes. No scheduler-wide pass unless a prior
        // violation left issued entries behind (the re-issue quirk) —
        // then one sweep reproduces the stepped scan's retain verbatim.
        for &idx in &ready {
            self.inst.flags[idx as usize] &= !F_IN_SCHED;
            self.sched_swap_remove(idx);
        }
        if self.sched_residue {
            for k in 0..self.sched.len() {
                let i = self.sched[k] as usize;
                if self.inst.flags[i] & F_ISSUED != 0 {
                    self.inst.flags[i] &= !F_IN_SCHED;
                }
            }
            {
                let inst = &self.inst;
                self.sched.retain(|&idx| !inst.flag(idx as usize, F_ISSUED));
                // The sweep can evict entries still parked in the ready
                // set (issued right before a violation, re-inserted by
                // the dirty rebuild, then not taken for lack of lanes).
                // Drop them too, or a later batch would issue a
                // non-scheduler entry and swap-remove through a stale
                // slot.
                self.ready_set
                    .retain(|&idx| inst.flag(idx as usize, F_IN_SCHED));
            }
            self.sched_reindex();
            self.sched_residue = false;
        }
        if cfg!(debug_assertions) {
            for k in 0..self.sched.len() {
                debug_assert!(
                    !self.inst.flag(self.sched[k] as usize, F_ISSUED),
                    "issued entry {} still in scheduler after batch removal",
                    self.sched[k]
                );
            }
        }
        self.ready = ready;
        Ok(())
    }

    // ---- divert queue ---------------------------------------------------------

    /// An instruction leaves the divert queue once every inter-task
    /// producer has been dispatched into the scheduler (§3.1). The scan
    /// compacts the queue in place (releases drop out, survivors slide
    /// down in order) and caches the earliest cycle any surviving entry's
    /// gate can open, so provably idle scans are skipped.
    fn drain_divert(&mut self) -> Result<(), SimError> {
        if self.divert.is_empty() {
            self.divert_next_release = NOT_YET;
            self.divert_dirty = false;
            return Ok(());
        }
        if !self.divert_dirty && self.divert_next_release > self.cycle {
            return Ok(());
        }
        let mut released = 0;
        let mut next_release = NOT_YET;
        let len = self.divert.len();
        let mut r = 0;
        let mut w = 0;
        let mut complete = true;
        while r < len {
            if released >= self.cfg.width || self.sched.len() >= self.cfg.scheduler_entries {
                complete = false;
                break;
            }
            let idx = self.divert[r];
            r += 1;
            let task_start = self.inst.task_start[idx as usize];
            // The gate opens at the max over producers: a producer still
            // in the divert queue blocks release regardless of task
            // (releasing early would recreate the consumer-camps-in-
            // scheduler deadlock); an intra-task producer never gates; an
            // inter-task producer opens "some time after" its dispatch
            // (§3.1) — the synchronization overhead of the conservative
            // dependence handling.
            let mut open_at = 0u64;
            for p in self.producers(idx as usize) {
                let pi = p as usize;
                let at = if self.inst.flag(pi, F_IN_DIVERT) {
                    NOT_YET
                } else if p >= task_start {
                    0
                } else if self.inst.flag(pi, F_DISPATCHED) {
                    self.inst.dispatched_at[pi] + self.cfg.divert_release_delay
                } else {
                    NOT_YET
                };
                open_at = open_at.max(at);
                if open_at == NOT_YET {
                    break;
                }
            }
            if open_at <= self.cycle {
                let f = &mut self.inst.flags[idx as usize];
                *f = (*f & !F_IN_DIVERT) | F_IN_SCHED;
                let Some(owner) = self.tasks.iter_mut().find(|t| t.start == task_start) else {
                    return Err(SimError::BrokenInvariant {
                        cycle: self.cycle,
                        detail: format!(
                            "divert entry {idx} has no live owner task (start {task_start})"
                        ),
                    });
                };
                debug_assert!(owner.divert_count > 0);
                owner.divert_count -= 1;
                self.sched_push(idx);
                if cfg!(debug_assertions) {
                    self.assert_sched_entry_sane(idx, "divert-release");
                }
                self.sched_entry_enqueued(idx);
                released += 1;
            } else {
                if open_at != NOT_YET && open_at < next_release {
                    next_release = open_at;
                }
                self.divert[w] = idx;
                w += 1;
            }
        }
        if r < len {
            self.divert.copy_within(r..len, w);
            w += len - r;
        }
        self.divert.truncate(w);
        if released > 0 {
            self.activity = true;
            self.divert_dirty = true;
        } else if complete {
            self.divert_next_release = next_release;
            self.divert_dirty = false;
        } else {
            self.divert_dirty = true;
        }
        Ok(())
    }

    // ---- dispatch ---------------------------------------------------------------

    fn dispatch(&mut self) {
        let mut budget = self.cfg.width;
        let ntasks = self.tasks.len();
        for ti in 0..ntasks {
            if budget == 0 {
                break;
            }
            while let Some(&idx) = self.tasks[ti].fq.front() {
                if self.inst.fetched_at[idx as usize] + self.cfg.decode_latency > self.cycle {
                    break; // still decoding
                }
                // ROB space, reserving `width` entries for the oldest task
                // so retirement can always make progress.
                let rob_limit = if ti == 0 {
                    self.cfg.rob_entries
                } else {
                    self.cfg.rob_entries.saturating_sub(self.cfg.width)
                };
                if self.rob_used >= rob_limit {
                    if ti == 0 {
                        self.rob_blocked_streak += 1;
                        self.rob_blocked_this_cycle = true;
                    }
                    self.tasks[ti].blocked = true;
                    break;
                }
                // Divert if any inter-task producer has not yet produced
                // its value (§3.1). Dependents of diverted instructions
                // chain into the divert queue as well: this keeps the
                // scheduler self-draining (every scheduler entry's
                // producers are in the scheduler, issued, or done, so the
                // oldest unissued entry is always eventually ready).
                //
                // In store-set mode the memory producer of a load only
                // gates dispatch when the predictor says so; otherwise
                // the load proceeds speculatively and may be squashed.
                let task_start = self.tasks[ti].start;
                let cycle = self.cycle;
                let mem_producer = self.dataflow.mem_producer(idx as usize);
                let [ra, rb] = self.dataflow.reg_producers(idx as usize);
                let needs_divert;
                let reg_speculative;
                let mem_speculative;
                if self.consumers.min_producer(idx as usize) >= task_start {
                    // Fast path — every producer is intra-task (the common
                    // case): no inter-task dependence exists, so nothing
                    // can synchronize or speculate and the predictors see
                    // no traffic. Only the unconditional divert-chaining
                    // rule can still gate dispatch.
                    let in_divert = |p: Option<u32>, inst: &InstTable| {
                        p.map(|p| inst.flag(p as usize, F_IN_DIVERT))
                            .unwrap_or(false)
                    };
                    needs_divert = in_divert(ra, &self.inst)
                        || in_divert(rb, &self.inst)
                        || in_divert(mem_producer, &self.inst);
                    reg_speculative = [false, false];
                    mem_speculative = false;
                } else {
                    let e = self.trace.entry(idx as usize);
                    let predict_mem_sync = match self.cfg.memory_dependence {
                        DependenceMode::OracleSync => true,
                        DependenceMode::StoreSet => self.ssit.predicts_dependent(e.pc),
                    };
                    // The divert-chaining term is unconditional (a producer
                    // in the divert queue always gates, or the scheduler
                    // stops self-draining); prediction only modulates
                    // whether an *inter-task* dependence synchronizes.
                    let gates = |p: u32, sync: bool, inst: &InstTable| {
                        inst.flag(p as usize, F_IN_DIVERT)
                            || (sync && p < task_start && inst.done_at[p as usize] > cycle)
                    };
                    // Hint-entry register model: an inter-task register
                    // dependence only synchronizes when the creating spawn
                    // point's hint entry names the register. One hint-table
                    // lookup per instruction (not per register slot),
                    // skipped entirely while the table is empty or the mode
                    // synchronizes everything anyway.
                    let srcs = e.inst.srcs();
                    let always_sync = self.cfg.register_dependence == DependenceMode::OracleSync
                        || self.tasks[ti].safe_mode;
                    let trigger = self.tasks[ti].created_by;
                    let hint = if always_sync || self.hints.is_empty() {
                        None
                    } else {
                        trigger.and_then(|t| self.hints.get(&t))
                    };
                    let reg_sync = |slot: usize| -> bool {
                        if always_sync {
                            return true;
                        }
                        if trigger.is_none() {
                            return true; // the initial task never speculates
                        }
                        let Some(r) = srcs[slot] else { return true };
                        hint.map(|(set, saturated)| *saturated || set.contains(&r))
                            .unwrap_or(false)
                    };
                    let ra_sync = reg_sync(0);
                    let rb_sync = reg_sync(1);
                    // A register slot gates dispatch when its producer is
                    // in the divert queue (the chaining rule —
                    // unconditional, or the scheduler stops self-draining)
                    // or when it is an inter-task dependence the hint entry
                    // says to synchronize.
                    let reg_gate = |p: u32, sync: bool, this: &Self| -> bool {
                        this.inst.flag(p as usize, F_IN_DIVERT)
                            || (sync && p < task_start && this.inst.done_at[p as usize] > cycle)
                    };
                    needs_divert = ra.map(|p| reg_gate(p, ra_sync, self)).unwrap_or(false)
                        || rb.map(|p| reg_gate(p, rb_sync, self)).unwrap_or(false)
                        || mem_producer
                            .map(|p| gates(p, predict_mem_sync, &self.inst))
                            .unwrap_or(false);
                    // Register slots proceeding despite an unresolved
                    // inter-task producer are speculative.
                    let reg_spec = |sync: bool, p: Option<u32>, this: &Self| -> bool {
                        !sync
                            && p.map(|p| {
                                p < task_start
                                    && !this.inst.flag(p as usize, F_IN_DIVERT)
                                    && this.inst.done_at[p as usize] > cycle
                            })
                            .unwrap_or(false)
                    };
                    reg_speculative = [reg_spec(ra_sync, ra, self), reg_spec(rb_sync, rb, self)];
                    // Speculative load: an inter-task memory producer
                    // exists, is not done, and the predictor chose not to
                    // synchronize.
                    mem_speculative = self.cfg.memory_dependence == DependenceMode::StoreSet
                        && !predict_mem_sync
                        && mem_producer
                            .map(|p| {
                                p < task_start
                                    && !self.inst.flag(p as usize, F_IN_DIVERT)
                                    && self.inst.done_at[p as usize] > self.cycle
                            })
                            .unwrap_or(false);
                    // Train down predicted syncs whose producer was long
                    // done.
                    if self.cfg.memory_dependence == DependenceMode::StoreSet && predict_mem_sync {
                        if let Some(p) = mem_producer {
                            if p < task_start && self.inst.done_at[p as usize] <= self.cycle {
                                self.ssit.train_unnecessary(e.pc);
                                // One confidence decay per attempt cycle: a
                                // repeat of this cycle is not a no-op even
                                // when dispatch then blocks, so it must
                                // never be fast-forwarded over.
                                self.activity = true;
                            }
                        }
                    }
                }
                if needs_divert {
                    if self.divert.len() >= self.cfg.divert_entries {
                        self.tasks[ti].blocked = true;
                        break;
                    }
                    self.divert.push(idx);
                    let mut f = F_DISPATCHED | F_IN_DIVERT;
                    if mem_speculative {
                        f |= F_MEM_SPEC;
                    }
                    if reg_speculative[0] {
                        f |= F_REG_SPEC0;
                    }
                    if reg_speculative[1] {
                        f |= F_REG_SPEC1;
                    }
                    self.inst.flags[idx as usize] = f;
                    self.inst.dispatched_at[idx as usize] = self.cycle;
                    self.inst.task_start[idx as usize] = task_start;
                    self.stats.diverted += 1;
                    self.tasks[ti].divert_count += 1;
                    self.divert_dirty = true;
                    self.record(SimEvent::Divert {
                        cycle: self.cycle,
                        task: self.tasks[ti].uid,
                        index: idx,
                    });
                } else {
                    // Reserve scheduler slots: one for divert release, one
                    // for the oldest task.
                    let sched_limit = if ti == 0 {
                        self.cfg.scheduler_entries.saturating_sub(1)
                    } else {
                        self.cfg.scheduler_entries.saturating_sub(2)
                    };
                    if self.sched.len() >= sched_limit {
                        self.tasks[ti].blocked = true;
                        break;
                    }
                    self.sched_push(idx);
                    let mut f = F_DISPATCHED | F_IN_SCHED;
                    if mem_speculative {
                        f |= F_MEM_SPEC;
                    }
                    if reg_speculative[0] {
                        f |= F_REG_SPEC0;
                    }
                    if reg_speculative[1] {
                        f |= F_REG_SPEC1;
                    }
                    self.inst.flags[idx as usize] = f;
                    self.inst.dispatched_at[idx as usize] = self.cycle;
                    self.inst.task_start[idx as usize] = task_start;
                    if cfg!(debug_assertions) {
                        self.assert_sched_entry_sane(idx, "dispatch");
                    }
                    self.sched_entry_enqueued(idx);
                    // A dispatch only moves divert release gates when some
                    // divert entry waits on this instruction as a producer
                    // (its gate term goes from "not yet" to `dispatched_at
                    // + delay`); the consumer index makes that exact.
                    if !self.divert.is_empty() {
                        let cons = self.consumers;
                        for &q in cons.of(idx as usize) {
                            if self.inst.flag(q as usize, F_IN_DIVERT) {
                                self.divert_dirty = true;
                                break;
                            }
                        }
                    }
                }
                self.activity = true;
                self.rob_used += 1;
                self.tasks[ti].fq.pop_front();
                budget -= 1;
                if budget == 0 {
                    break;
                }
            }
        }
    }

    // ---- fetch ---------------------------------------------------------------

    fn fetch(&mut self, source: &mut dyn SpawnSource) {
        let n = self.trace.len() as u32;
        // Determine eligibility, clear resolved branch waits, and run the
        // biased-ICount arbitration (§3.2: fewest in-flight instructions
        // first, older task winning ties) in one pass: `winners` keeps
        // the best `fetch_tasks_per_cycle` candidates via bounded
        // insertion — no per-cycle sort. Tasks that lose arbitration take
        // a structural stall (not a pipeline one).
        let cap = self.cfg.fetch_tasks_per_cycle;
        let mut winners = std::mem::take(&mut self.winners);
        winners.clear();
        for ti in 0..self.tasks.len() {
            let end = self.tasks[ti].end.min(n);
            if self.tasks[ti].fetch_next >= end {
                self.evaluate_profit(ti);
                continue;
            }
            if let Some(b) = self.tasks[ti].waiting_branch {
                let resolved = self.inst.done_at[b as usize] <= self.cycle
                    && self.cycle
                        >= self.inst.fetched_at[b as usize] + self.cfg.misprediction_penalty;
                if resolved {
                    self.tasks[ti].waiting_branch = None;
                    self.activity = true;
                } else {
                    self.stats.fetch_stall_branch_cycles += 1;
                    self.tasks[ti].stall_since_spawn += 1;
                    self.tasks[ti].stall_flag = Some(Bucket::BranchStall);
                    continue;
                }
            }
            if self.cycle < self.tasks[ti].fetch_resume_at {
                // Attribute the wait to its cause (the seed charged all
                // three to `fetch_stall_icache_cycles`, inflating the
                // icache figure on squash- or spawn-heavy runs).
                match self.tasks[ti].resume_reason {
                    ResumeKind::Icache => {
                        self.stats.fetch_stall_icache_cycles += 1;
                        self.tasks[ti].stall_flag = Some(Bucket::IcacheStall);
                    }
                    ResumeKind::Squash => {
                        self.stats.squash_recovery_cycles += 1;
                        self.tasks[ti].stall_flag = Some(Bucket::SquashRecovery);
                    }
                    ResumeKind::Spawn => {
                        self.stats.spawn_setup_cycles += 1;
                        self.tasks[ti].stall_flag = Some(Bucket::SpawnSetup);
                    }
                }
                self.tasks[ti].stall_since_spawn += 1;
                continue;
            }
            if self.tasks[ti].fq.len() >= self.cfg.fetch_queue_entries {
                self.tasks[ti].blocked = true;
                continue;
            }
            if let Some(loser) = icount_insert(&mut winners, cap, ti, self.tasks[ti].inflight) {
                self.tasks[loser].blocked = true;
            }
        }

        let mut budget = self.cfg.width;
        let line_shift = self.cfg.l1i.line_bytes.trailing_zeros();
        let cons = self.consumers;
        let mut head = 0;
        while head < winners.len() {
            let ti = winners[head].0;
            head += 1;
            while budget > 0 && self.tasks[ti].fq.len() < self.cfg.fetch_queue_entries {
                let idx = self.tasks[ti].fetch_next;
                if idx >= self.tasks[ti].end.min(n) {
                    break;
                }
                let meta = cons.meta[idx as usize];
                let byte_addr = (cons.pc_word[idx as usize] as u64) * 4;
                // Instruction cache: access per line transition (line
                // sizes are power-of-two, enforced by `CacheConfig`).
                let line = byte_addr >> line_shift;
                if line != self.tasks[ti].last_fetch_line {
                    let lat = self.hier.access_ifetch(byte_addr);
                    // Even a hit reorders the replacement state, so the
                    // access itself counts as activity.
                    self.activity = true;
                    if lat > self.cfg.l1_hit_latency {
                        self.tasks[ti].fetch_resume_at = self.cycle + lat;
                        self.tasks[ti].resume_reason = ResumeKind::Icache;
                        self.tasks[ti].last_fetch_line = line;
                        break;
                    }
                    self.tasks[ti].last_fetch_line = line;
                }
                // Fetch the instruction.
                self.inst.fetched_at[idx as usize] = self.cycle;
                self.inst.task_start[idx as usize] = self.tasks[ti].start;
                self.tasks[ti].fq.push_back(idx);
                self.tasks[ti].inflight += 1;
                self.tasks[ti].fetch_next += 1;
                budget -= 1;
                self.activity = true;

                // Task Spawn Unit: only the tail task spawns (§3.2),
                // unless the §6 any-task extension is enabled.
                if (ti == self.tasks.len() - 1 || self.cfg.spawn_from_any_task)
                    && self.try_spawn(ti, idx, source)
                {
                    // A non-tail insertion at ti+1 shifts every later
                    // task index; fix up the rest of this cycle's
                    // fetch schedule.
                    for w in winners[head..].iter_mut() {
                        if w.0 > ti {
                            w.0 += 1;
                        }
                    }
                }

                // Control flow: at most one taken transfer per task per
                // cycle; mispredictions stall this task until resolution.
                match (meta >> K_FETCH_SHIFT) & 0b11 {
                    KF_COND => {
                        if self.predictions.mispredicted(idx as usize) {
                            self.tasks[ti].waiting_branch = Some(idx);
                            break;
                        }
                        if meta & K_TAKEN != 0 {
                            break;
                        }
                    }
                    KF_STOP_PRED => {
                        if self.predictions.mispredicted(idx as usize) {
                            self.tasks[ti].waiting_branch = Some(idx);
                        }
                        break;
                    }
                    KF_STOP => break,
                    _ => {}
                }
            }
        }
        self.winners = winners;
    }

    /// Debug invariant: a scheduler entry must never wait on a producer
    /// that sits in the divert queue unless the corresponding slot is
    /// speculative (otherwise the scheduler stops self-draining).
    #[allow(dead_code)]
    fn assert_sched_entry_sane(&self, idx: u32, site: &str) {
        let i = idx as usize;
        let [ra, rb] = self.dataflow.reg_producers(i);
        let mem = self.dataflow.mem_producer(i);
        let check = |p: Option<u32>, spec: bool, what: &str| {
            if let Some(p) = p {
                assert!(
                    spec || !self.inst.flag(p as usize, F_IN_DIVERT),
                    "cycle {}: sched entry {idx} ({site}) waits on {what} producer {p}                      which is in the divert queue (consumer spec {:?}/{})",
                    self.cycle,
                    self.inst.reg_speculative(i),
                    self.inst.flag(i, F_MEM_SPEC)
                );
            }
        };
        check(ra, self.inst.flag(i, F_REG_SPEC0), "reg0");
        check(rb, self.inst.flag(i, F_REG_SPEC1), "reg1");
        check(mem, self.inst.flag(i, F_MEM_SPEC), "mem");
    }

    /// Adds `reg` to the hint entry of the spawn point that created the
    /// task containing `idx` (capacity-limited: a full entry records a
    /// capacity miss instead — the spawn point will keep violating until
    /// the profitability feedback throttles it).
    fn train_hint(&mut self, idx: u32, reg: Option<polyflow_isa::Reg>) {
        let Some(reg) = reg else { return };
        let Some(task) = self.tasks.iter().find(|t| t.start <= idx && idx < t.end) else {
            return;
        };
        let Some(trigger) = task.created_by else {
            return;
        };
        let entry = self.hints.entry(trigger).or_default();
        if entry.0.contains(&reg) {
            return;
        }
        if entry.0.len() >= self.cfg.hint_register_slots {
            // The 8-byte entry cannot name another register: saturate it
            // so future tasks from this trigger synchronize conservatively
            // (and pay the full divert serialization for every inter-task
            // register — the hint-capacity cost of dependence-rich spawn
            // points such as loop iterations).
            self.stats.hint_capacity_misses += 1;
            entry.1 = true;
            return;
        }
        entry.0.push(reg);
    }

    /// Drops the youngest task entirely, refunding its ROB/scheduler/
    /// divert occupancy; the new tail's interval reopens so the discarded
    /// region is refetched later. This is the §6 "reclaim resources from
    /// younger threads" extension.
    fn reclaim_youngest(&mut self) -> Result<(), SimError> {
        let last = self.tasks.len() - 1;
        debug_assert!(last > 0);
        let start = self.tasks[last].start;
        let max_fetched = self
            .tasks
            .iter()
            .map(|t| t.fetch_next)
            .max()
            .unwrap_or(start);
        let mut discarded = 0u64;
        for i in start..max_fetched {
            if self.inst.fetched_at[i as usize] != NOT_YET {
                if self.inst.flag(i as usize, F_DISPATCHED) {
                    self.rob_used -= 1;
                }
                self.inst.reset_one(i as usize);
                discarded += 1;
            }
        }
        self.sched.retain(|&i| i < start);
        self.sched_reindex();
        self.divert.retain(|&i| i < start);
        self.activity = true;
        self.sched_dirty = true;
        self.divert_dirty = true;
        let invariant = |cycle, what: &str| SimError::BrokenInvariant {
            cycle,
            detail: what.to_string(),
        };
        let popped = self
            .tasks
            .pop()
            .ok_or_else(|| invariant(self.cycle, "reclamation with no tail task"))?;
        let tail = self
            .tasks
            .last_mut()
            .ok_or_else(|| invariant(self.cycle, "reclamation left no older task"))?;
        tail.end = OPEN_END;
        self.stats.rob_reclaims += 1;
        self.record(SimEvent::Squash {
            cycle: self.cycle,
            task: popped.uid,
            discarded,
            reclaim: true,
        });
        Ok(())
    }

    /// Squashes the task containing trace index `idx` and every younger
    /// task (§3.1: "data-dependence violations lead to squashes of the
    /// violating task, as well as all tasks beyond it"). The violating
    /// task refetches from its start after the recovery penalty.
    fn squash_task_containing(&mut self, idx: u32) -> Result<(), SimError> {
        let Some(ti) = self
            .tasks
            .iter()
            .position(|t| t.start <= idx && idx < t.end)
        else {
            return Err(SimError::BrokenInvariant {
                cycle: self.cycle,
                detail: format!("in-flight instruction {idx} belongs to no task"),
            });
        };
        if ti == 0 {
            return Err(SimError::BrokenInvariant {
                cycle: self.cycle,
                detail: format!(
                    "speculative instruction {idx} belongs to the oldest task, \
                     which must never speculate"
                ),
            });
        }
        let start = self.tasks[ti].start;
        // Discard all in-flight state at or beyond the violating task.
        let max_fetched = self
            .tasks
            .iter()
            .map(|t| t.fetch_next)
            .max()
            .unwrap_or(start);
        let mut discarded = 0u64;
        for i in start..max_fetched {
            if self.inst.fetched_at[i as usize] != NOT_YET {
                if self.inst.flag(i as usize, F_DISPATCHED) {
                    self.rob_used -= 1;
                }
                self.inst.reset_one(i as usize);
                discarded += 1;
            }
        }
        self.sched.retain(|&i| i < start);
        self.sched_reindex();
        self.divert.retain(|&i| i < start);
        self.activity = true;
        self.sched_dirty = true;
        self.divert_dirty = true;
        // Drop younger tasks entirely; reset the violating task.
        self.tasks.truncate(ti + 1);
        let t = &mut self.tasks[ti];
        t.fetch_next = t.start;
        t.end = OPEN_END; // it is the tail again
        t.safe_mode = true; // conservative refetch: no more speculation
        t.fq.clear();
        t.inflight = 0;
        t.waiting_branch = None;
        t.fetch_resume_at = self.cycle + self.cfg.squash_penalty;
        t.resume_reason = ResumeKind::Squash;
        t.last_fetch_line = u64::MAX;
        t.spawn_trigger = None;
        t.stall_since_spawn = 0;
        t.profit_evaluated = false;
        t.divert_count = 0;
        t.stall_flag = None;
        t.blocked = false;
        let uid = t.uid;
        self.stats.squashes += 1;
        self.stats.squashed_instructions += discarded;
        self.record(SimEvent::Squash {
            cycle: self.cycle,
            task: uid,
            discarded,
            reclaim: false,
        });
        Ok(())
    }

    /// Scores a completed spawner: if it stalled while its spawned task
    /// ran, the spawn hid latency (profitable); if it sailed through, the
    /// spawn only fragmented the fetch stream.
    fn evaluate_profit(&mut self, ti: usize) {
        if !self.cfg.profitability_feedback || self.tasks[ti].profit_evaluated {
            return;
        }
        let Some(trigger) = self.tasks[ti].spawn_trigger else {
            return;
        };
        self.tasks[ti].profit_evaluated = true;
        let profitable = self.tasks[ti].stall_since_spawn >= self.cfg.profit_stall_threshold;
        let entry = self.profit.entry(trigger).or_insert((PROFIT_MAX, 0));
        if profitable {
            // One latency-hiding instance outweighs several quiet ones: a
            // spawn point that pays off on mispredicted instances must
            // stay armed even when the branch usually predicts well.
            entry.0 = (entry.0 + 4).min(PROFIT_MAX);
        } else {
            entry.0 = (entry.0 - 1).max(0);
        }
    }

    /// Attempts a spawn from task `ti` at the fetch of trace index `idx`.
    /// Returns true if a new task was inserted (always directly after
    /// `ti`).
    fn try_spawn(&mut self, ti: usize, idx: u32, source: &mut dyn SpawnSource) -> bool {
        let e = self.trace.entry(idx as usize);
        let Some((target, kind)) = source.spawn_at(e) else {
            return false;
        };
        if self.tasks.len() >= self.cfg.max_tasks {
            self.stats.spawns_rejected_contexts += 1;
            return false;
        }
        // Dynamic profitability feedback (§3.1): throttle spawn points
        // whose spawners never stall afterwards, probing occasionally so
        // phase changes can re-enable them.
        if self.cfg.profitability_feedback {
            let entry = self.profit.entry(e.pc).or_insert((PROFIT_MAX, 0));
            if entry.0 == 0 {
                entry.1 += 1;
                if !entry.1.is_multiple_of(16) {
                    self.stats.spawns_rejected_unprofitable += 1;
                    return false;
                }
            }
        }
        let n = self.trace.len() as u32;
        let Some(tidx) = self.pc_index.next_at_or_after(target, idx + 1) else {
            self.stats.spawns_rejected_distance += 1;
            return false;
        };
        if tidx >= n
            || tidx - idx > self.cfg.max_spawn_distance
            || tidx - idx < self.cfg.min_spawn_distance
        {
            self.stats.spawns_rejected_distance += 1;
            return false;
        }
        // A non-tail spawner (any-task extension) may only split its own
        // interval: the target must fall before the spawner's current end,
        // otherwise the region already belongs to a younger task.
        let old_end = self.tasks[ti].end;
        if tidx >= old_end {
            self.stats.spawns_rejected_distance += 1;
            return false;
        }
        // Split the spawner's interval at `tidx`; the new context becomes
        // fetchable after the spawn overhead elapses.
        self.tasks[ti].end = tidx;
        self.tasks[ti].spawn_trigger = Some(e.pc);
        self.tasks[ti].stall_since_spawn = 0;
        self.tasks[ti].profit_evaluated = false;
        let mut t = Task::new(tidx);
        t.end = old_end;
        t.created_by = Some(e.pc);
        // Tasks from a saturated hint entry synchronize everything.
        t.safe_mode = self
            .hints
            .get(&e.pc)
            .map(|(_, saturated)| *saturated)
            .unwrap_or(false);
        t.fetch_resume_at = self.cycle + self.cfg.spawn_overhead_cycles;
        t.resume_reason = ResumeKind::Spawn;
        t.uid = self.account.add_task(tidx, e.pc, kind, self.cycle);
        // The creation cycle is itself spawn-setup time: the new context
        // exists but cannot fetch until the overhead elapses. Charging it
        // here keeps `spawn_setup_cycles` equal to the SpawnSetup bucket.
        if self.cfg.spawn_overhead_cycles > 0 {
            t.stall_flag = Some(Bucket::SpawnSetup);
            self.stats.spawn_setup_cycles += 1;
        }
        let uid = t.uid;
        self.tasks.insert(ti + 1, t);
        self.stats.spawns.add(kind);
        self.stats.max_live_tasks = self.stats.max_live_tasks.max(self.tasks.len());
        self.stats.spawn_log.push(crate::metrics::SpawnEvent {
            cycle: self.cycle,
            trigger: e.pc,
            target,
            target_index: tidx,
            kind,
            live_tasks: self.tasks.len() as u8,
        });
        self.record(SimEvent::Spawn {
            cycle: self.cycle,
            task: uid,
            trigger: e.pc,
            target,
            target_index: tidx,
            kind,
            live_tasks: self.tasks.len() as u8,
        });
        true
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::spawn_source::{NoSpawn, StaticSpawnSource};
    use polyflow_core::{Policy, ProgramAnalysis};
    use polyflow_isa::{execute_window, AluOp, Cond, Program, ProgramBuilder, Reg};

    fn counted_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.bind_label(top);
        b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, iters, top);
        b.halt();
        b.end_function();
        b.build().unwrap()
    }

    fn sim_baseline(p: &Program, window: u64) -> SimResult {
        let trace = execute_window(p, window).unwrap().trace;
        let cfg = MachineConfig::superscalar();
        let prepared = PreparedTrace::new(&trace, &cfg);
        simulate(&prepared, &cfg, &mut NoSpawn)
    }

    #[test]
    fn empty_trace_is_trivial() {
        let trace = Trace::new();
        let cfg = MachineConfig::superscalar();
        let prepared = PreparedTrace::new(&trace, &cfg);
        let r = simulate(&prepared, &cfg, &mut NoSpawn);
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn superscalar_retires_everything() {
        let p = counted_loop(100);
        let r = sim_baseline(&p, 100_000);
        // li + 100 iterations x (add, add, li r28, br) + halt.
        assert_eq!(r.instructions, 402);
        assert!(r.cycles > 0);
        assert!(r.ipc() > 0.1, "IPC {}", r.ipc());
        assert!(r.ipc() <= 8.0, "IPC cannot exceed width");
        assert_eq!(r.total_spawns(), 0);
    }

    #[test]
    fn ipc_is_plausible_for_serial_dependence_chain() {
        // Every instruction depends on the previous: IPC near (just above) 1
        // is impossible to beat... actually the increments of r2 and r1
        // are two independent chains, so IPC can approach 2-3.
        let p = counted_loop(500);
        let r = sim_baseline(&p, 100_000);
        assert!(r.ipc() > 0.5 && r.ipc() < 8.0, "IPC {}", r.ipc());
    }

    #[test]
    fn polyflow_with_no_spawns_matches_superscalar_cycles_closely() {
        let p = counted_loop(200);
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let ss_cfg = MachineConfig::superscalar();
        let pf_cfg = MachineConfig::hpca07();
        let prep_ss = PreparedTrace::new(&trace, &ss_cfg);
        let prep_pf = PreparedTrace::new(&trace, &pf_cfg);
        let a = simulate(&prep_ss, &ss_cfg, &mut NoSpawn);
        let b = simulate(&prep_pf, &pf_cfg, &mut NoSpawn);
        // One task, no spawns: the machines are identical.
        assert_eq!(a.cycles, b.cycles);
    }

    /// A loop whose body contains a hard-to-predict hammock: postdominator
    /// spawning should beat the superscalar.
    fn hard_hammock_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        let els = b.fresh_label("els");
        let join = b.fresh_label("join");
        // r10 = pseudo-random via LCG; branch on low bit.
        b.li(Reg::R10, 12345);
        b.li(Reg::R1, 0);
        b.bind_label(top);
        b.li(Reg::R11, 1103515245);
        b.alu(AluOp::Mul, Reg::R10, Reg::R10, Reg::R11);
        b.alui(AluOp::Add, Reg::R10, Reg::R10, 12345);
        b.alui(AluOp::Srl, Reg::R12, Reg::R10, 16);
        b.alui(AluOp::And, Reg::R12, Reg::R12, 1);
        b.br_imm(Cond::Eq, Reg::R12, 0, els);
        // then: long-ish computation
        for _ in 0..6 {
            b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
        }
        b.jmp(join);
        b.bind_label(els);
        for _ in 0..6 {
            b.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
        }
        b.bind_label(join);
        // independent work after the join
        for _ in 0..4 {
            b.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
        }
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 400, top);
        b.halt();
        b.end_function();
        b.build().unwrap()
    }

    #[test]
    fn hammock_spawning_beats_superscalar_on_hard_branches() {
        let p = hard_hammock_program();
        let trace = execute_window(&p, 200_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);

        let ss_cfg = MachineConfig::superscalar();
        let prep = PreparedTrace::new(&trace, &ss_cfg);
        let base = simulate(&prep, &ss_cfg, &mut NoSpawn);

        let pf_cfg = MachineConfig::hpca07();
        let prep_pf = PreparedTrace::new(&trace, &pf_cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let pf = simulate(&prep_pf, &pf_cfg, &mut src);

        assert!(pf.total_spawns() > 0, "no spawns happened");
        let speedup = pf.speedup_percent_over(&base);
        assert!(
            speedup > 5.0,
            "expected speedup from hammock spawning, got {speedup:.1}% \
             (base {} cycles, pf {} cycles, {} spawns)",
            base.cycles,
            pf.cycles,
            pf.total_spawns()
        );
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // Replaying different traces/policies through one SimScratch must
        // give exactly the results of fresh-allocation runs.
        let p1 = hard_hammock_program();
        let p2 = counted_loop(300);
        let t1 = execute_window(&p1, 150_000).unwrap().trace;
        let t2 = execute_window(&p2, 150_000).unwrap().trace;
        let ss = MachineConfig::superscalar();
        let pf = MachineConfig::hpca07();
        let analysis = ProgramAnalysis::analyze(&p1);

        let mut scratch = SimScratch::default();
        for _ in 0..2 {
            for (trace, cfg) in [(&t1, &ss), (&t2, &ss), (&t1, &pf)] {
                let prep = PreparedTrace::new(trace, cfg);
                let fresh = simulate(&prep, cfg, &mut NoSpawn);
                let reused = simulate_with(&prep, cfg, &mut NoSpawn, &mut scratch);
                assert_eq!(fresh, reused);
            }
            let prep = PreparedTrace::new(&t1, &pf);
            let table = analysis.spawn_table(Policy::Postdoms);
            let fresh = simulate(&prep, &pf, &mut StaticSpawnSource::new(table.clone()));
            let reused =
                simulate_with(&prep, &pf, &mut StaticSpawnSource::new(table), &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn shared_oracles_match_fresh_preparation() {
        // A PreparedTrace assembled from shared oracles must be
        // indistinguishable from one computed from scratch.
        let p = hard_hammock_program();
        let trace = execute_window(&p, 150_000).unwrap().trace;
        let ss = MachineConfig::superscalar();
        let pf = MachineConfig::hpca07();
        assert_eq!(ss.predictor_key(), pf.predictor_key());

        let fresh = PreparedTrace::new(&trace, &pf);
        let shared = PreparedTrace::with_oracles(
            fresh.trace_arc(),
            fresh.dataflow_arc(),
            fresh.pc_index_arc(),
            &ss,
        );
        let analysis = ProgramAnalysis::analyze(&p);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let a = simulate(&fresh, &pf, &mut src);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let b = simulate(&shared, &pf, &mut src);
        assert_eq!(a, b);
    }

    #[test]
    fn task_contexts_are_bounded() {
        let p = hard_hammock_program();
        let trace = execute_window(&p, 200_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig::hpca07();
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let r = simulate(&prep, &cfg, &mut src);
        assert!(r.max_live_tasks <= cfg.max_tasks);
        assert!(r.max_live_tasks >= 2, "spawning should create tasks");
    }

    #[test]
    fn spawn_distance_cap_rejects_far_targets() {
        let p = hard_hammock_program();
        let trace = execute_window(&p, 200_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig {
            max_spawn_distance: 0,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let r = simulate(&prep, &cfg, &mut src);
        assert_eq!(r.total_spawns(), 0);
        assert!(r.spawns_rejected_distance > 0);
    }

    #[test]
    fn divert_queue_sees_inter_task_dependences() {
        // Loop spawning creates induction-variable dependences between
        // tasks: diverted instructions must appear.
        // A loop whose iterations are chained through a slow multiply:
        // the next task's consumer dispatches while the producer is still
        // executing, so it must divert.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 3);
        b.bind_label(top);
        for _ in 0..4 {
            b.alu(AluOp::Mul, Reg::R2, Reg::R2, Reg::R2);
        }
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 300, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        // Disable the profitability throttle: this test wants the spawns
        // (and their diverted consumers) to keep happening even though a
        // predictable loop makes them unprofitable.
        let cfg = MachineConfig {
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r = simulate(&prep, &cfg, &mut src);
        assert!(r.total_spawns() > 0);
        assert!(r.diverted > 0, "loop spawns must divert the multiply chain");
    }

    /// A loop whose iterations communicate through memory with the store
    /// late and the load early: spawned next-iteration tasks speculate on
    /// the dependence and must be squashed in store-set mode.
    fn memory_chained_loop() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let shared = b.alloc_data(&[3]);
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R20, shared as i64);
        b.bind_label(top);
        b.load(Reg::R2, Reg::R20, 0); // early load of last iteration's value
        for _ in 0..4 {
            b.alu(AluOp::Mul, Reg::R2, Reg::R2, Reg::R2); // slow
        }
        b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
        b.store(Reg::R2, Reg::R20, 0); // late store
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 300, top);
        b.halt();
        b.end_function();
        b.build().unwrap()
    }

    #[test]
    fn store_set_mode_squashes_speculative_loads() {
        let p = memory_chained_loop();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig {
            memory_dependence: crate::store_set::DependenceMode::StoreSet,
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r = simulate(&prep, &cfg, &mut src);
        assert!(r.total_spawns() > 0, "loop spawns must fire");
        assert!(
            r.squashes > 0,
            "speculative loads must violate at least once"
        );
        assert!(r.squashed_instructions > 0);
        assert_eq!(r.instructions as usize, trace.len(), "everything retires");
        // The predictor learns: squashes stay far below the spawn count.
        assert!(
            r.squashes < r.total_spawns(),
            "{} squashes vs {} spawns — predictor never learned",
            r.squashes,
            r.total_spawns()
        );
    }

    #[test]
    fn oracle_mode_never_squashes() {
        let p = memory_chained_loop();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig {
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r = simulate(&prep, &cfg, &mut src);
        assert!(r.total_spawns() > 0);
        assert_eq!(r.squashes, 0);
        assert_eq!(r.squashed_instructions, 0);
    }

    #[test]
    fn store_set_results_match_oracle_work() {
        // Same retired work either way; squashing only costs cycles.
        let p = memory_chained_loop();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let mk = |mode| MachineConfig {
            memory_dependence: mode,
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let oracle_cfg = mk(crate::store_set::DependenceMode::OracleSync);
        let ss_cfg = mk(crate::store_set::DependenceMode::StoreSet);
        let prep = PreparedTrace::new(&trace, &oracle_cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let oracle = simulate(&prep, &oracle_cfg, &mut src);
        let prep = PreparedTrace::new(&trace, &ss_cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let ss = simulate(&prep, &ss_cfg, &mut src);
        assert_eq!(oracle.instructions, ss.instructions);
    }

    #[test]
    fn hint_entry_model_squashes_then_learns() {
        // A loop carrying one register chain: the first spawned instance
        // violates (empty hint entry), trains the entry, and later
        // instances divert cleanly.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 3);
        b.bind_label(top);
        for _ in 0..4 {
            b.alu(AluOp::Mul, Reg::R2, Reg::R2, Reg::R2);
        }
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 300, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig {
            register_dependence: crate::store_set::DependenceMode::StoreSet,
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r = simulate(&prep, &cfg, &mut src);
        assert!(r.total_spawns() > 0);
        assert!(r.register_violations > 0, "cold hint entries must violate");
        assert!(
            r.register_violations < r.total_spawns(),
            "the hint entry must learn ({} violations / {} spawns)",
            r.register_violations,
            r.total_spawns()
        );
        assert_eq!(r.instructions as usize, trace.len());
    }

    #[test]
    fn hint_entry_capacity_limits_wide_dependence_sets() {
        // Six live loop-carried chains exceed the 4-slot hint entry: the
        // spawn point keeps violating and records capacity misses.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.bind_label(top);
        for r in [Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7] {
            b.alu(AluOp::Mul, r, r, r);
            b.alui(AluOp::Add, r, r, 1);
        }
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 300, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig {
            register_dependence: crate::store_set::DependenceMode::StoreSet,
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r = simulate(&prep, &cfg, &mut src);
        assert!(r.hint_capacity_misses > 0, "entry capacity must bind");
        assert_eq!(r.instructions as usize, trace.len());
    }

    #[test]
    fn any_task_spawning_splits_inner_intervals() {
        // The §6 extension: with nested hammocks, the inner join can be
        // spawned even though the spawner is no longer the tail.
        let p = hard_hammock_program();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let mk = |any| MachineConfig {
            spawn_from_any_task: any,
            ..MachineConfig::hpca07()
        };
        let run = |cfg: &MachineConfig| {
            let prep = PreparedTrace::new(&trace, cfg);
            let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
            simulate(&prep, cfg, &mut src)
        };
        let tail_only = run(&mk(false));
        let any_task = run(&mk(true));
        assert_eq!(tail_only.instructions, any_task.instructions);
        // Any-task spawning can only add opportunities.
        assert!(any_task.total_spawns() >= tail_only.total_spawns());
        // Non-tail spawns appear as out-of-order target indices in the log.
        let monotone = any_task
            .spawn_log
            .windows(2)
            .all(|w| w[0].target_index < w[1].target_index);
        if any_task.total_spawns() > tail_only.total_spawns() {
            assert!(!monotone, "extra spawns should include interval splits");
        }
    }

    #[test]
    fn rob_reclamation_frees_entries_under_pressure() {
        // A tiny ROB plus a long-latency oldest task forces reclamation.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let region = b.alloc_zeroed(64 * 1024); // L2-missing region
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R20, region as i64);
        b.bind_label(top);
        // A slow load the oldest task stalls retirement on.
        b.alui(AluOp::Sll, Reg::R2, Reg::R1, 9);
        b.alu(AluOp::Add, Reg::R3, Reg::R20, Reg::R2);
        b.load(Reg::R4, Reg::R3, 0);
        b.alu(AluOp::Add, Reg::R5, Reg::R5, Reg::R4);
        for _ in 0..20 {
            b.alui(AluOp::Add, Reg::R6, Reg::R6, 1);
        }
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 400, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig {
            rob_entries: 48,
            rob_reclamation: true,
            rob_reclaim_after: 4,
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r = simulate(&prep, &cfg, &mut src);
        assert_eq!(r.instructions as usize, trace.len());
        assert!(r.rob_reclaims > 0, "pressure should trigger reclamation");
        // Default configuration never reclaims.
        let dflt = MachineConfig::hpca07();
        let prep = PreparedTrace::new(&trace, &dflt);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r2 = simulate(&prep, &dflt, &mut src);
        assert_eq!(r2.rob_reclaims, 0);
    }

    #[test]
    fn max_cycles_budget_returns_typed_error() {
        let p = counted_loop(200);
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let cfg = MachineConfig {
            max_cycles: 10,
            ..MachineConfig::superscalar()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let e = try_simulate(&prep, &cfg, &mut NoSpawn).unwrap_err();
        match e {
            SimError::CyclesExceeded {
                max_cycles,
                retired,
                instructions,
            } => {
                assert_eq!(max_cycles, 10);
                assert_eq!(instructions as usize, trace.len());
                assert!(retired < instructions);
            }
            other => panic!("expected CyclesExceeded, got {other}"),
        }
        // The default budget is unreachable.
        let cfg = MachineConfig::superscalar();
        let prep = PreparedTrace::new(&trace, &cfg);
        assert!(try_simulate(&prep, &cfg, &mut NoSpawn).is_ok());
    }

    #[test]
    fn livelock_watchdog_carries_postmortem_state() {
        // A one-cycle window trips during the front-end fill (decode
        // latency guarantees some retirement-free cycles), exercising the
        // post-mortem payload without needing a genuine simulator bug.
        let p = counted_loop(50);
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let cfg = MachineConfig {
            livelock_window: 2,
            ..MachineConfig::superscalar()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let e = try_simulate(&prep, &cfg, &mut NoSpawn).unwrap_err();
        match e {
            SimError::Livelock {
                cycle,
                window,
                account,
                detail,
                ..
            } => {
                assert_eq!(window, 2);
                assert!(cycle >= 2);
                // The ledger travels with the error and balances.
                assert!(account.check().is_ok());
                assert!(detail.contains("stuck inst"));
            }
            other => panic!("expected Livelock, got {other}"),
        }
    }

    #[test]
    fn malformed_trace_is_rejected_up_front() {
        let p = counted_loop(20);
        let mut trace = execute_window(&p, 100_000).unwrap().trace;
        // Corrupt the continuity of the retirement stream.
        let mid = trace.len() / 2;
        trace.entries_mut()[mid].next_pc = polyflow_isa::Pc::new(999);
        let cfg = MachineConfig::superscalar();
        let prep = PreparedTrace::new(&trace, &cfg);
        let e = try_simulate(&prep, &cfg, &mut NoSpawn).unwrap_err();
        assert!(matches!(e, SimError::MalformedTrace(_)), "got {e}");
    }

    #[test]
    #[should_panic(expected = "cycle budget exceeded")]
    fn infallible_wrapper_panics_with_the_rendered_error() {
        let p = counted_loop(200);
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let cfg = MachineConfig {
            max_cycles: 10,
            ..MachineConfig::superscalar()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        simulate(&prep, &cfg, &mut NoSpawn);
    }

    #[test]
    fn try_simulate_matches_simulate_exactly() {
        let p = hard_hammock_program();
        let trace = execute_window(&p, 150_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig::hpca07();
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let a = simulate(&prep, &cfg, &mut src);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let b = try_simulate(&prep, &cfg, &mut src).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn retirement_is_complete_and_in_order() {
        // The machine retires exactly trace.len() instructions; IPC bounded.
        let p = hard_hammock_program();
        let trace = execute_window(&p, 50_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig::hpca07();
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let r = simulate(&prep, &cfg, &mut src);
        assert_eq!(r.instructions as usize, trace.len());
        assert!(r.ipc() <= cfg.width as f64);
    }

    /// Exhaustive check of the fixed-capacity ICount arbitration: feeding
    /// candidates in task order through `icount_insert` must select
    /// exactly the prefix of a stable sort by key (ties keep task order,
    /// i.e. older tasks win), and every candidate ends up either a winner
    /// or a reported loser, never both.
    #[test]
    fn icount_selection_matches_stable_sort() {
        for cap in 1..=4usize {
            // Odometer over all key assignments in 0..3 for four tasks.
            for combo in 0..81usize {
                let keys = [
                    combo % 3,
                    (combo / 3) % 3,
                    (combo / 9) % 3,
                    (combo / 27) % 3,
                ];
                let mut winners = Vec::new();
                let mut losers = Vec::new();
                for (ti, &key) in keys.iter().enumerate() {
                    if let Some(l) = icount_insert(&mut winners, cap, ti, key) {
                        losers.push(l);
                    }
                }
                let mut expect: Vec<(usize, usize)> =
                    keys.iter().enumerate().map(|(t, &k)| (t, k)).collect();
                expect.sort_by_key(|&(_, k)| k); // stable: ties keep task order
                expect.truncate(cap);
                assert_eq!(winners, expect, "cap {cap}, keys {keys:?}");
                let mut all: Vec<usize> = winners.iter().map(|&(t, _)| t).collect();
                all.extend(&losers);
                all.sort_unstable();
                assert_eq!(all, vec![0, 1, 2, 3], "winner/loser partition");
            }
        }
    }

    /// Pins the §3.2 tie-break direction: equal in-flight counts go to
    /// the *older* task (insertion order is task order and equal keys
    /// insert after existing entries).
    #[test]
    fn icount_tie_break_prefers_older_tasks() {
        let mut winners = Vec::new();
        let mut losers = Vec::new();
        for (ti, key) in [(0usize, 2usize), (1, 1), (2, 1), (3, 0)] {
            if let Some(l) = icount_insert(&mut winners, 2, ti, key) {
                losers.push(l);
            }
        }
        // Stable sort by key: (3,0), (1,1), (2,1), (0,2) — the older of
        // the tied pair (task 1) keeps its slot.
        assert_eq!(winners, vec![(3, 0), (1, 1)]);
        assert_eq!(losers, vec![0, 2]);
    }

    /// Cycle skipping is an accounting fast path only: results, cycle
    /// counts, and the bucket ledger are bit-identical with it on and
    /// off, across policy-free, squash-heavy, and spawn-heavy workloads.
    #[test]
    fn cycle_skip_fast_forward_is_bit_identical() {
        let run_opts = |trace: &Trace,
                        cfg: &MachineConfig,
                        table: Option<polyflow_core::SpawnTable>,
                        skip: bool| {
            let prep = PreparedTrace::new(trace, cfg);
            let mut scratch = SimScratch::default();
            let opts = SimOptions { cycle_skip: skip };
            match table {
                Some(t) => {
                    let mut src = StaticSpawnSource::new(t);
                    try_simulate_opts(&prep, cfg, &mut src, &mut scratch, &mut NullSink, opts)
                        .unwrap()
                }
                None => {
                    try_simulate_opts(&prep, cfg, &mut NoSpawn, &mut scratch, &mut NullSink, opts)
                        .unwrap()
                }
            }
        };
        let combos: Vec<(Trace, MachineConfig, Option<polyflow_core::SpawnTable>)> = vec![
            (
                execute_window(&counted_loop(200), 100_000).unwrap().trace,
                MachineConfig::superscalar(),
                None,
            ),
            (
                execute_window(&memory_chained_loop(), 100_000)
                    .unwrap()
                    .trace,
                MachineConfig {
                    memory_dependence: crate::store_set::DependenceMode::StoreSet,
                    profitability_feedback: false,
                    ..MachineConfig::hpca07()
                },
                Some(ProgramAnalysis::analyze(&memory_chained_loop()).spawn_table(Policy::Loop)),
            ),
            (
                execute_window(&hard_hammock_program(), 200_000)
                    .unwrap()
                    .trace,
                MachineConfig::hpca07(),
                Some(
                    ProgramAnalysis::analyze(&hard_hammock_program()).spawn_table(Policy::Postdoms),
                ),
            ),
        ];
        let mut any_skipped = false;
        for (trace, cfg, table) in combos {
            let (on, t_on) = run_opts(&trace, &cfg, table.clone(), true);
            let (off, t_off) = run_opts(&trace, &cfg, table, false);
            assert_eq!(on, off, "cycle skipping changed the result");
            assert_eq!(t_off.skipped_cycles, 0);
            assert_eq!(t_off.fast_forwards, 0);
            assert_eq!(
                t_on.executed_cycles + t_on.skipped_cycles,
                t_off.executed_cycles,
                "every skipped cycle is a cycle the stepped run executed"
            );
            assert_eq!(t_on.executed_cycles + t_on.skipped_cycles, on.cycles);
            any_skipped |= t_on.skipped_cycles > 0;
        }
        assert!(
            any_skipped,
            "no combo ever fast-forwarded — test is vacuous"
        );
    }

    /// The watchdogs observe fast-forwarded time: a livelock trips at the
    /// same cycle, with the same post-mortem, whether or not the run
    /// skipped its way there.
    #[test]
    fn cycle_skip_preserves_watchdog_cycles() {
        let p = counted_loop(50);
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let cfg = MachineConfig {
            livelock_window: 2,
            ..MachineConfig::superscalar()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let run = |skip: bool| {
            let mut scratch = SimScratch::default();
            try_simulate_opts(
                &prep,
                &cfg,
                &mut NoSpawn,
                &mut scratch,
                &mut NullSink,
                SimOptions { cycle_skip: skip },
            )
            .unwrap_err()
        };
        let (on, off) = (run(true), run(false));
        assert_eq!(on.to_string(), off.to_string());
        match (on, off) {
            (
                SimError::Livelock {
                    cycle: c1,
                    detail: d1,
                    ..
                },
                SimError::Livelock {
                    cycle: c2,
                    detail: d2,
                    ..
                },
            ) => {
                assert_eq!(c1, c2);
                assert_eq!(d1, d2);
            }
            (a, b) => panic!("expected two Livelocks, got {a} / {b}"),
        }
    }
}
