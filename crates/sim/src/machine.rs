//! The trace-driven cycle model: fetch, dispatch, divert, issue, retire.
//!
//! One [`Machine::run`] replays a retirement [`Trace`] through the
//! PolyFlow microarchitecture of Figure 7:
//!
//! * **Tasks** partition the trace into contiguous intervals, oldest first.
//!   The tail (youngest) task may spawn: when it fetches a trigger PC its
//!   [`SpawnSource`] knows, and the target PC occurs in the trace within
//!   `max_spawn_distance` instructions, the tail task is split there
//!   (§3.2: spawning only from the tail task, oracle distance check).
//! * **Fetch** selects up to `fetch_tasks_per_cycle` stall-free tasks by
//!   biased ICount (fewest in-flight instructions first, §3.2) and fetches
//!   up to `width` instructions total, at most one taken control transfer
//!   per task per cycle. A mispredicted branch stalls *only its own task's
//!   fetch* until the branch resolves — control-equivalent tasks keep
//!   fetching, which is exactly the control-independence benefit the paper
//!   exploits. Instruction-cache misses stall the fetching task for the
//!   fill latency.
//! * **Dispatch** moves decoded instructions, oldest task first, into the
//!   shared ROB. Instructions with an inter-task source operand that has
//!   not yet been produced go to the **divert queue** instead of the
//!   scheduler (§3.1); they enter the scheduler once their producers have
//!   dispatched. No value prediction, no selective re-execution.
//! * **Issue** selects ready scheduler entries oldest-first onto the 8
//!   functional units; loads/stores access the cache hierarchy at issue.
//! * **Retire** drains up to `width` completed instructions per cycle in
//!   global trace order (the shared ROB retires architecturally in order)
//!   and feeds the retirement stream to the spawn source (training the
//!   reconvergence predictor online, §4.4).

use crate::account::{Bucket, CycleAccount};
use crate::branch_pred::PredictionTrace;
use crate::cache::Hierarchy;
use crate::config::MachineConfig;
use crate::error::SimError;
use crate::events::{NullSink, SimEvent, TraceSink};
use crate::metrics::SimResult;
use crate::spawn_source::SpawnSource;
use crate::store_set::{DependenceMode, StoreSetPredictor};
use polyflow_isa::{Dataflow, InstClass, PcIndex, Trace};
use std::collections::VecDeque;
use std::sync::Arc;

const NOT_YET: u64 = u64::MAX;
const OPEN_END: u32 = u32::MAX;
/// Saturation ceiling of the spawn-profitability counters.
const PROFIT_MAX: i8 = 7;
/// Events retained by the always-on post-mortem flight recorder (the
/// tail of the event stream travels with [`SimError::Livelock`]).
const EVENT_RING: usize = 64;

/// Analyses of a trace that are shared by every policy run: dataflow
/// producers, the PC occurrence index, and branch-prediction outcomes.
///
/// Everything is reference-counted, so a `PreparedTrace` is cheap to
/// clone and safe to share read-only across threads — the parallel sweep
/// harness builds one per (workload, predictor configuration) and fans
/// the policy cells out over it. The config-independent oracles (dataflow
/// and PC index) can additionally be shared *across* predictor
/// configurations via [`PreparedTrace::with_oracles`].
#[derive(Debug, Clone)]
pub struct PreparedTrace {
    trace: Arc<Trace>,
    dataflow: Arc<Dataflow>,
    pc_index: Arc<PcIndex>,
    predictions: Arc<PredictionTrace>,
}

impl PreparedTrace {
    /// Precomputes everything `simulate` needs. Clones the trace into
    /// shared ownership; use [`PreparedTrace::from_arc`] to avoid the
    /// copy when the caller already holds an `Arc<Trace>`.
    pub fn new(trace: &Trace, config: &MachineConfig) -> PreparedTrace {
        Self::from_arc(Arc::new(trace.clone()), config)
    }

    /// Precomputes everything `simulate` needs, without copying the trace.
    pub fn from_arc(trace: Arc<Trace>, config: &MachineConfig) -> PreparedTrace {
        let dataflow = Arc::new(trace.dataflow());
        let pc_index = Arc::new(trace.pc_index());
        Self::with_oracles(trace, dataflow, pc_index, config)
    }

    /// Builds a prepared trace from already-computed config-independent
    /// oracles, computing only the branch-prediction replay (the sole
    /// config-dependent part; see [`MachineConfig::predictor_key`]).
    pub fn with_oracles(
        trace: Arc<Trace>,
        dataflow: Arc<Dataflow>,
        pc_index: Arc<PcIndex>,
        config: &MachineConfig,
    ) -> PreparedTrace {
        let predictions = Arc::new(PredictionTrace::compute(&trace, config));
        PreparedTrace {
            trace,
            dataflow,
            pc_index,
            predictions,
        }
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Shared ownership of the trace being replayed.
    pub fn trace_arc(&self) -> Arc<Trace> {
        Arc::clone(&self.trace)
    }

    /// Oracle dataflow (register and memory producers).
    pub fn dataflow(&self) -> &Dataflow {
        &self.dataflow
    }

    /// Shared ownership of the dataflow oracle.
    pub fn dataflow_arc(&self) -> Arc<Dataflow> {
        Arc::clone(&self.dataflow)
    }

    /// Dynamic occurrences of each static PC.
    pub fn pc_index(&self) -> &PcIndex {
        &self.pc_index
    }

    /// Shared ownership of the PC occurrence index.
    pub fn pc_index_arc(&self) -> Arc<PcIndex> {
        Arc::clone(&self.pc_index)
    }

    /// Replayed branch-prediction outcomes.
    pub fn predictions(&self) -> &PredictionTrace {
        &self.predictions
    }
}

/// Reusable simulation buffers.
///
/// One [`simulate`] call over an `n`-instruction trace allocates the
/// per-instruction state table (the dominant allocation — tens of
/// megabytes for the bundled workloads), the scheduler/divert/task
/// vectors, and the feedback hash maps. A sweep that replays the same
/// traces under many policies pays that cost for every cell; passing a
/// `SimScratch` to [`simulate_with`] instead recycles the buffers from
/// run to run (each worker thread of the parallel sweep harness keeps
/// one). Results are bit-identical with or without scratch reuse — every
/// buffer is fully reset before use.
#[derive(Debug, Default)]
pub struct SimScratch {
    state: Vec<InstState>,
    tasks: Vec<Task>,
    sched: Vec<u32>,
    divert: VecDeque<u32>,
    ready: Vec<u32>,
    eligible: Vec<usize>,
    profit: std::collections::HashMap<polyflow_isa::Pc, (i8, u32)>,
    hints: std::collections::HashMap<polyflow_isa::Pc, (Vec<polyflow_isa::Reg>, bool)>,
}

#[derive(Debug, Clone, Copy)]
struct InstState {
    fetched_at: u64,
    dispatched_at: u64,
    done_at: u64,
    task_start: u32,
    dispatched: bool,
    in_divert: bool,
    issued: bool,
    /// Load dispatched ignoring its (predicted-independent) inter-task
    /// memory producer; a violation occurs if it issues first.
    mem_speculative: bool,
    /// Register source slots dispatched ignoring their inter-task
    /// producer (hint-entry model): a violation occurs if the instruction
    /// issues before the producer completes.
    reg_speculative: [bool; 2],
}

impl Default for InstState {
    fn default() -> Self {
        InstState {
            fetched_at: NOT_YET,
            dispatched_at: NOT_YET,
            done_at: NOT_YET,
            task_start: 0,
            dispatched: false,
            in_divert: false,
            issued: false,
            mem_speculative: false,
            reg_speculative: [false, false],
        }
    }
}

/// Why a task's fetch is parked until [`Task::fetch_resume_at`]: the
/// cycle-accounting layer attributes the wait to the matching bucket (the
/// seed lumped all three causes into `fetch_stall_icache_cycles`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResumeKind {
    /// Instruction-cache fill in progress.
    Icache,
    /// Post-squash recovery penalty.
    Squash,
    /// Task Spawn Unit context setup for a fresh task.
    Spawn,
}

#[derive(Debug)]
struct Task {
    start: u32,
    end: u32,
    fetch_next: u32,
    fetch_resume_at: u64,
    waiting_branch: Option<u32>,
    fq: VecDeque<u32>,
    inflight: usize,
    last_fetch_line: u64,
    /// Dynamic task uid — index into [`CycleAccount::tasks`].
    uid: u32,
    /// This task's instructions currently sitting in the divert queue.
    divert_count: u32,
    /// Why fetch is parked until `fetch_resume_at`.
    resume_reason: ResumeKind,
    /// Cycle-accounting bucket recorded by this cycle's fetch stage, if
    /// fetch stalled (cleared by the end-of-cycle accounting pass).
    stall_flag: Option<Bucket>,
    /// Structural-contention marker for this cycle: dispatch or fetch hit
    /// a full resource (cleared by the accounting pass).
    blocked: bool,
    /// The stall episode currently open for this task in the event
    /// stream (drives `StallBegin`/`StallEnd` emission; tracked only
    /// when tracing is enabled).
    active_stall: Option<Bucket>,
    /// Trigger PC of the spawn this task performed as tail, if any; used
    /// by the profitability feedback.
    spawn_trigger: Option<polyflow_isa::Pc>,
    /// Trigger PC of the spawn that *created* this task (None for the
    /// initial task); keys the hint-entry register set.
    created_by: Option<polyflow_isa::Pc>,
    /// After a dependence-violation squash the task refetches in safe
    /// mode: every inter-task register dependence synchronizes, whether or
    /// not the hint entry names it. Prevents livelock when the entry's
    /// capacity cannot cover the task's dependence set.
    safe_mode: bool,
    /// Fetch-stall cycles accumulated since this task spawned.
    stall_since_spawn: u64,
    /// Whether the spawn's profitability has been evaluated.
    profit_evaluated: bool,
}

impl Task {
    fn new(start: u32) -> Task {
        Task {
            start,
            end: OPEN_END,
            fetch_next: start,
            fetch_resume_at: 0,
            waiting_branch: None,
            fq: VecDeque::new(),
            inflight: 0,
            last_fetch_line: u64::MAX,
            uid: 0,
            divert_count: 0,
            resume_reason: ResumeKind::Icache,
            stall_flag: None,
            blocked: false,
            active_stall: None,
            spawn_trigger: None,
            created_by: None,
            safe_mode: false,
            stall_since_spawn: 0,
            profit_evaluated: false,
        }
    }
}

/// The cycle-level machine. Create one per run via [`simulate`].
struct Machine<'a> {
    cfg: &'a MachineConfig,
    trace: &'a Trace,
    dataflow: &'a Dataflow,
    pc_index: &'a PcIndex,
    predictions: &'a PredictionTrace,
    hier: Hierarchy,
    state: Vec<InstState>,
    tasks: Vec<Task>,
    retire_ptr: usize,
    rob_used: usize,
    sched: Vec<u32>,
    divert: VecDeque<u32>,
    /// Per-cycle ready-list buffer, reused across `issue` calls.
    ready: Vec<u32>,
    /// Per-cycle fetch-schedule buffer, reused across `fetch` calls.
    eligible: Vec<usize>,
    cycle: u64,
    stats: SimResult,
    last_retire_cycle: u64,
    /// Profitability feedback state per trigger PC: a saturating counter
    /// (0..=PROFIT_MAX, optimistically initialized) and a suppression
    /// count used to periodically probe throttled spawn points.
    profit: std::collections::HashMap<polyflow_isa::Pc, (i8, u32)>,
    /// Store-set memory-dependence predictor (store-set mode only).
    ssit: StoreSetPredictor,
    /// Consecutive cycles the oldest task has been blocked on a full ROB
    /// (drives the §6 reclamation extension).
    rob_blocked_streak: u64,
    /// Per-spawn-point register hint entries (hint-entry model): which
    /// architectural registers tasks from this trigger synchronize on,
    /// plus a saturation flag — once the dependence set overflows the
    /// entry, tasks from this trigger synchronize *everything* (they
    /// start in safe mode).
    hints: std::collections::HashMap<polyflow_isa::Pc, (Vec<polyflow_isa::Reg>, bool)>,
    /// The run's cycle-slot ledger (always on; see `crate::account`).
    account: CycleAccount,
    /// Structured-event consumer.
    sink: &'a mut dyn TraceSink,
    /// Cached `sink.enabled()`: when false, events only reach the
    /// post-mortem ring.
    trace_on: bool,
    /// Always-on flight recorder: the last [`EVENT_RING`] events, for
    /// [`SimError::Livelock`] post-mortems.
    ring: VecDeque<SimEvent>,
}

/// Runs `prepared` through the machine described by `config`, spawning
/// tasks according to `source`. Returns the run's statistics.
///
/// # Panics
///
/// Panics on any [`SimError`]: a malformed trace, a tripped watchdog
/// ([`MachineConfig::max_cycles`] / [`MachineConfig::livelock_window`]),
/// or a broken internal invariant. Callers that need graceful failure
/// use [`try_simulate`].
pub fn simulate(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
) -> SimResult {
    simulate_with(prepared, config, source, &mut SimScratch::default())
}

/// [`simulate`], but recycling the run's buffers through `scratch`.
///
/// Semantically identical to `simulate` — the scratch only donates
/// allocations (every buffer is cleared and resized before use) and
/// receives them back when the run finishes. Sweeps that replay the same
/// traces under many policies should keep one `SimScratch` per worker
/// thread and pass it to every cell.
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_with(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
    scratch: &mut SimScratch,
) -> SimResult {
    simulate_traced(prepared, config, source, scratch, &mut NullSink)
}

/// [`simulate_with`], additionally streaming structured [`SimEvent`]s to
/// `sink` (see `crate::events`).
///
/// Event emission never feeds back into simulation state, so the
/// returned [`SimResult`] is bit-identical for every sink; with the
/// default [`NullSink`] (`enabled() == false`) events only reach the
/// internal post-mortem ring.
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_traced(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
    scratch: &mut SimScratch,
    sink: &mut dyn TraceSink,
) -> SimResult {
    match try_simulate_traced(prepared, config, source, scratch, sink) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`simulate`]: watchdog trips, malformed traces, and broken
/// internal invariants surface as a typed [`SimError`] instead of a
/// panic.
pub fn try_simulate(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
) -> Result<SimResult, SimError> {
    try_simulate_with(prepared, config, source, &mut SimScratch::default())
}

/// Fallible [`simulate_with`].
pub fn try_simulate_with(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
    scratch: &mut SimScratch,
) -> Result<SimResult, SimError> {
    try_simulate_traced(prepared, config, source, scratch, &mut NullSink)
}

/// Fallible [`simulate_traced`]: the trace is structurally validated up
/// front ([`Trace::validate`] → [`SimError::MalformedTrace`]), the
/// watchdogs in [`MachineConfig`] bound the run, and every formerly
/// panicking invariant site returns [`SimError::BrokenInvariant`].
///
/// On `Err` the scratch buffers donated to the run are *not* returned
/// (the next run through the same scratch simply reallocates); results
/// on `Ok` remain bit-identical with or without scratch reuse.
pub fn try_simulate_traced(
    prepared: &PreparedTrace,
    config: &MachineConfig,
    source: &mut dyn SpawnSource,
    scratch: &mut SimScratch,
    sink: &mut dyn TraceSink,
) -> Result<SimResult, SimError> {
    let n = prepared.trace.len();
    if n == 0 {
        return Ok(SimResult::default());
    }
    prepared.trace().validate()?;
    let mut state = std::mem::take(&mut scratch.state);
    state.clear();
    state.resize(n, InstState::default());
    let mut tasks = std::mem::take(&mut scratch.tasks);
    tasks.clear();
    tasks.push(Task::new(0));
    let mut sched = std::mem::take(&mut scratch.sched);
    sched.clear();
    sched.reserve(config.scheduler_entries);
    let mut divert = std::mem::take(&mut scratch.divert);
    divert.clear();
    let mut ready = std::mem::take(&mut scratch.ready);
    ready.clear();
    let mut eligible = std::mem::take(&mut scratch.eligible);
    eligible.clear();
    let mut profit = std::mem::take(&mut scratch.profit);
    profit.clear();
    let mut hints = std::mem::take(&mut scratch.hints);
    hints.clear();
    let mut m = Machine {
        cfg: config,
        trace: prepared.trace(),
        dataflow: prepared.dataflow(),
        pc_index: prepared.pc_index(),
        predictions: prepared.predictions(),
        hier: Hierarchy::new(config),
        state,
        tasks,
        retire_ptr: 0,
        rob_used: 0,
        sched,
        divert,
        ready,
        eligible,
        cycle: 0,
        stats: SimResult::default(),
        last_retire_cycle: 0,
        profit,
        ssit: StoreSetPredictor::new(config.store_set_index_bits),
        rob_blocked_streak: 0,
        hints,
        account: CycleAccount::new(config.max_tasks),
        trace_on: sink.enabled(),
        sink,
        ring: VecDeque::with_capacity(EVENT_RING),
    };
    let run = m.run(source);
    let finish = m.finish_into(scratch);
    run?;
    finish
}

impl Machine<'_> {
    fn run(&mut self, source: &mut dyn SpawnSource) -> Result<(), SimError> {
        let n = self.trace.len();
        while self.retire_ptr < n {
            self.retire(source);
            if self.retire_ptr >= n {
                break;
            }
            self.issue()?;
            self.drain_divert()?;
            self.dispatch();
            // §6 extension: reclaim ROB entries from the youngest task if
            // the oldest has been starved long enough.
            if self.cfg.rob_reclamation
                && self.rob_blocked_streak >= self.cfg.rob_reclaim_after
                && self.tasks.len() > 1
            {
                self.reclaim_youngest()?;
                self.rob_blocked_streak = 0;
            }
            self.fetch(source);
            self.account_cycle();
            self.cycle += 1;
            if self.cycle - self.last_retire_cycle >= self.cfg.livelock_window {
                return Err(self.livelock_error());
            }
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::CyclesExceeded {
                    max_cycles: self.cfg.max_cycles,
                    retired: self.retire_ptr as u64,
                    instructions: n as u64,
                });
            }
        }
        Ok(())
    }

    /// Assembles the [`SimError::Livelock`] post-mortem: the stuck
    /// instruction's state, its owner task, the scheduler/divert heads,
    /// the cycle-slot ledger, and the recent event ring.
    fn livelock_error(&self) -> SimError {
        let s = self.state[self.retire_ptr];
        let owner = self
            .tasks
            .iter()
            .enumerate()
            .find(|(_, t)| t.start as usize <= self.retire_ptr && (self.retire_ptr as u32) < t.end)
            .map(|(i, t)| {
                format!(
                    "task {i} [{}..{}) fetch_next {} fq {} wait {:?} resume {} safe {}",
                    t.start,
                    t.end,
                    t.fetch_next,
                    t.fq.len(),
                    t.waiting_branch,
                    t.fetch_resume_at,
                    t.safe_mode
                )
            })
            .unwrap_or_else(|| "NO TASK".into());
        let mut dump = String::new();
        for &idx in self.sched.iter().take(6) {
            let st = self.state[idx as usize];
            let prods: Vec<String> = self
                .producers(idx as usize)
                .map(|p| {
                    let ps = self.state[p as usize];
                    format!(
                        "{p}(d{} v{} done{})",
                        ps.dispatched as u8,
                        ps.in_divert as u8,
                        (ps.done_at <= self.cycle) as u8
                    )
                })
                .collect();
            dump.push_str(&format!(
                "  sched {idx} spec{:?}/{} <- {:?}\n",
                st.reg_speculative, st.mem_speculative as u8, prods
            ));
        }
        for &idx in self.divert.iter().take(4) {
            dump.push_str(&format!("  divert {idx}\n"));
        }
        let detail = format!(
            "retire_ptr {}, rob {}, sched {}, divert {}, tasks {}\nstuck inst: fetched_at {} dispatched {} in_divert {} issued {} done_at {} spec {:?}/{}\nowner: {owner}\n{dump}",
            self.retire_ptr, self.rob_used, self.sched.len(),
            self.divert.len(), self.tasks.len(),
            s.fetched_at, s.dispatched, s.in_divert, s.issued, s.done_at,
            s.reg_speculative, s.mem_speculative,
        );
        let mut account = self.account.clone();
        account.cycles = self.cycle;
        SimError::Livelock {
            cycle: self.cycle,
            window: self.cfg.livelock_window,
            retired: self.retire_ptr as u64,
            account: Box::new(account),
            recent_events: self.ring.iter().copied().collect(),
            detail,
        }
    }

    /// Records `ev` in the always-on post-mortem ring and forwards it to
    /// the sink when tracing is enabled. Never feeds back into timing.
    fn record(&mut self, ev: SimEvent) {
        if self.ring.len() == EVENT_RING {
            self.ring.pop_front();
        }
        self.ring.push_back(ev);
        if self.trace_on {
            self.sink.event(&ev);
        }
    }

    /// End-of-cycle accounting: charges one cycle-slot per context to
    /// exactly one [`Bucket`] (see `crate::account` for the taxonomy and
    /// priority), and emits `StallBegin`/`StallEnd` events on episode
    /// transitions when tracing is enabled. Pure bookkeeping — never
    /// feeds back into timing.
    fn account_cycle(&mut self) {
        let live = self.tasks.len();
        for ti in 0..live {
            let (uid, bucket, prev, cur) = {
                let t = &mut self.tasks[ti];
                let bucket = if let Some(b) = t.stall_flag {
                    b
                } else if t.divert_count > 0 {
                    Bucket::DivertWait
                } else if t.blocked {
                    Bucket::Contention
                } else {
                    Bucket::Retire
                };
                t.stall_flag = None;
                t.blocked = false;
                let prev = t.active_stall;
                let cur = if bucket.is_stall() {
                    Some(bucket)
                } else {
                    None
                };
                t.active_stall = cur;
                (t.uid, bucket, prev, cur)
            };
            self.account.charge(uid, bucket);
            if prev != cur {
                if let Some(b) = prev {
                    self.record(SimEvent::StallEnd {
                        cycle: self.cycle,
                        task: uid,
                        bucket: b,
                    });
                }
                if let Some(b) = cur {
                    self.record(SimEvent::StallBegin {
                        cycle: self.cycle,
                        task: uid,
                        bucket: b,
                    });
                }
            }
        }
        self.account
            .charge_idle(self.cfg.max_tasks.saturating_sub(live) as u64);
    }

    fn finish_into(self, scratch: &mut SimScratch) -> Result<SimResult, SimError> {
        let mut stats = self.stats;
        stats.cycles = self.cycle.max(1);
        stats.instructions = self.trace.len() as u64;
        let mut account = self.account;
        account.cycles = self.cycle;
        // Always-on (not just debug): `sum(buckets) == cycles × contexts`
        // is the fuzz harness's core invariant, and one pass over the
        // bucket array is noise next to the run itself.
        let check = account.check();
        stats.account = account;
        stats.branch_mispredicts = self.predictions.cond_mispredicts();
        stats.indirect_mispredicts = self.predictions.indirect_mispredicts();
        stats.l1i_misses = self.hier.l1i().misses();
        stats.l1d_misses = self.hier.l1d().misses();
        stats.l2_misses = self.hier.l2().misses();
        scratch.state = self.state;
        scratch.tasks = self.tasks;
        scratch.sched = self.sched;
        scratch.divert = self.divert;
        scratch.ready = self.ready;
        scratch.eligible = self.eligible;
        scratch.profit = self.profit;
        scratch.hints = self.hints;
        match check {
            Ok(()) => Ok(stats),
            Err(detail) => Err(SimError::AccountingViolation { detail }),
        }
    }

    /// All producers of `idx` (register sources plus, for loads, the
    /// producing store).
    fn producers(&self, idx: usize) -> impl Iterator<Item = u32> + '_ {
        let [a, b] = self.dataflow.reg_producers(idx);
        let m = self.dataflow.mem_producer(idx);
        [a, b, m].into_iter().flatten()
    }

    // ---- retire ------------------------------------------------------------

    fn retire(&mut self, source: &mut dyn SpawnSource) {
        let n = self.trace.len();
        let mut retired = 0;
        while retired < self.cfg.width && self.retire_ptr < n {
            let s = &self.state[self.retire_ptr];
            if !(s.dispatched && s.done_at <= self.cycle) {
                break;
            }
            source.on_retire(self.trace.entry(self.retire_ptr));
            self.rob_used -= 1;
            self.tasks[0].inflight -= 1;
            self.retire_ptr += 1;
            retired += 1;
            self.last_retire_cycle = self.cycle;
            // Pop tasks whose interval is fully retired.
            while self.tasks.len() > 1 && self.retire_ptr as u32 >= self.tasks[0].end {
                debug_assert_eq!(self.tasks[0].inflight, 0);
                self.tasks.remove(0);
            }
        }
        if retired > 0 {
            self.record(SimEvent::RetireBatch {
                cycle: self.cycle,
                count: retired as u32,
                retire_ptr: self.retire_ptr as u32,
            });
        }
    }

    // ---- issue ---------------------------------------------------------------

    fn issue(&mut self) -> Result<(), SimError> {
        // Collect ready entries, oldest first, into the reused per-cycle
        // buffer. Speculative loads ignore their (unsynchronized) memory
        // producer for readiness.
        let mut ready = std::mem::take(&mut self.ready);
        ready.clear();
        for &idx in &self.sched {
            let st = &self.state[idx as usize];
            let [ra, rb] = self.dataflow.reg_producers(idx as usize);
            let mem = self.dataflow.mem_producer(idx as usize);
            let slot_ready = |p: Option<u32>, spec: bool| {
                spec || p
                    .map(|p| self.state[p as usize].done_at <= self.cycle)
                    .unwrap_or(true)
            };
            if slot_ready(ra, st.reg_speculative[0])
                && slot_ready(rb, st.reg_speculative[1])
                && slot_ready(mem, st.mem_speculative)
            {
                ready.push(idx);
            }
        }
        ready.sort_unstable();
        ready.truncate(self.cfg.fn_units.min(self.cfg.width));
        if ready.is_empty() {
            self.ready = ready;
            return Ok(());
        }
        let mut pos = 0;
        while pos < ready.len() {
            let idx = ready[pos];
            pos += 1;
            // A speculative load issuing before its true producer store is
            // a dependence violation: squash its task and all younger
            // tasks, train the predictor, and stop issuing this cycle
            // (younger scheduler entries may have just been squashed).
            if self.state[idx as usize].mem_speculative {
                if let Some(p) = self.dataflow.mem_producer(idx as usize) {
                    if self.state[p as usize].done_at > self.cycle {
                        let pc = self.trace.entry(idx as usize).pc;
                        self.ssit.train_violation(pc);
                        let r = self.squash_task_containing(idx);
                        self.ready = ready;
                        return r;
                    }
                }
            }
            // Register-dependence violation (hint-entry model): an
            // unsynchronized inter-task register source whose producer is
            // still in flight.
            let reg_spec = self.state[idx as usize].reg_speculative;
            if reg_spec[0] || reg_spec[1] {
                let [ra, rb] = self.dataflow.reg_producers(idx as usize);
                let srcs = self.trace.entry(idx as usize).inst.srcs();
                for (slot, p) in [(0, ra), (1, rb)] {
                    if !reg_spec[slot] {
                        continue;
                    }
                    let Some(p) = p else { continue };
                    if self.state[p as usize].done_at > self.cycle {
                        self.stats.register_violations += 1;
                        self.train_hint(idx, srcs[slot]);
                        let r = self.squash_task_containing(idx);
                        self.ready = ready;
                        return r;
                    }
                }
            }
            let e = self.trace.entry(idx as usize);
            let latency = match e.class() {
                InstClass::Load => self.hier.access_data(e.mem_addr.unwrap_or(0)),
                InstClass::Store => {
                    // Warm the line so later loads hit (implicit
                    // store-to-load forwarding through the L1).
                    self.hier.access_data(e.mem_addr.unwrap_or(0));
                    1
                }
                InstClass::Mul => self.cfg.mul_latency,
                _ => 1,
            };
            let s = &mut self.state[idx as usize];
            s.issued = true;
            s.done_at = self.cycle + latency;
        }
        self.sched.retain(|idx| !self.state[*idx as usize].issued);
        self.ready = ready;
        Ok(())
    }

    // ---- divert queue ---------------------------------------------------------

    /// An instruction leaves the divert queue once every inter-task
    /// producer has been dispatched into the scheduler (§3.1).
    fn drain_divert(&mut self) -> Result<(), SimError> {
        let mut released = 0;
        let mut i = 0;
        while i < self.divert.len() {
            if released >= self.cfg.width || self.sched.len() >= self.cfg.scheduler_entries {
                break;
            }
            let idx = self.divert[i];
            let task_start = self.state[idx as usize].task_start;
            let gate_open = self.producers(idx as usize).all(|p| {
                let ps = &self.state[p as usize];
                if ps.in_divert {
                    // A producer still in the divert queue blocks release
                    // regardless of task: releasing early would recreate
                    // the consumer-camps-in-scheduler deadlock.
                    return false;
                }
                if p >= task_start {
                    return true; // intra-task: ordinary scheduler wakeup
                }
                // Inter-task: release "some time after" the producer's
                // dispatch (§3.1) — the synchronization overhead of the
                // conservative dependence handling.
                ps.dispatched && ps.dispatched_at + self.cfg.divert_release_delay <= self.cycle
            });
            if gate_open {
                self.divert.remove(i);
                let s = &mut self.state[idx as usize];
                s.in_divert = false;
                let Some(owner) = self.tasks.iter_mut().find(|t| t.start == task_start) else {
                    return Err(SimError::BrokenInvariant {
                        cycle: self.cycle,
                        detail: format!(
                            "divert entry {idx} has no live owner task (start {task_start})"
                        ),
                    });
                };
                debug_assert!(owner.divert_count > 0);
                owner.divert_count -= 1;
                self.sched.push(idx);
                if cfg!(debug_assertions) {
                    self.assert_sched_entry_sane(idx, "divert-release");
                }
                released += 1;
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    // ---- dispatch ---------------------------------------------------------------

    fn dispatch(&mut self) {
        let mut budget = self.cfg.width;
        let ntasks = self.tasks.len();
        for ti in 0..ntasks {
            if budget == 0 {
                break;
            }
            while let Some(&idx) = self.tasks[ti].fq.front() {
                let s = self.state[idx as usize];
                if s.fetched_at + self.cfg.decode_latency > self.cycle {
                    break; // still decoding
                }
                // ROB space, reserving `width` entries for the oldest task
                // so retirement can always make progress.
                let rob_limit = if ti == 0 {
                    self.cfg.rob_entries
                } else {
                    self.cfg.rob_entries.saturating_sub(self.cfg.width)
                };
                if self.rob_used >= rob_limit {
                    if ti == 0 {
                        self.rob_blocked_streak += 1;
                    }
                    self.tasks[ti].blocked = true;
                    break;
                }
                // Divert if any inter-task producer has not yet produced
                // its value (§3.1). Dependents of diverted instructions
                // chain into the divert queue as well: this keeps the
                // scheduler self-draining (every scheduler entry's
                // producers are in the scheduler, issued, or done, so the
                // oldest unissued entry is always eventually ready).
                //
                // In store-set mode the memory producer of a load only
                // gates dispatch when the predictor says so; otherwise
                // the load proceeds speculatively and may be squashed.
                let task_start = self.tasks[ti].start;
                let e = self.trace.entry(idx as usize);
                let mem_producer = self.dataflow.mem_producer(idx as usize);
                let predict_mem_sync = match self.cfg.memory_dependence {
                    DependenceMode::OracleSync => true,
                    DependenceMode::StoreSet => self.ssit.predicts_dependent(e.pc),
                };
                // The divert-chaining term is unconditional (a producer in
                // the divert queue always gates, or the scheduler stops
                // self-draining); prediction only modulates whether an
                // *inter-task* dependence synchronizes.
                let gates = |p: u32, sync: bool, state: &[InstState]| {
                    state[p as usize].in_divert
                        || (sync && p < task_start && state[p as usize].done_at > self.cycle)
                };
                let [ra, rb] = self.dataflow.reg_producers(idx as usize);
                // Hint-entry register model: an inter-task register
                // dependence only synchronizes when the creating spawn
                // point's hint entry names the register.
                let srcs = e.inst.srcs();
                let reg_sync = |slot: usize, this: &Self| -> bool {
                    if this.cfg.register_dependence == DependenceMode::OracleSync
                        || this.tasks[ti].safe_mode
                    {
                        return true;
                    }
                    let Some(trigger) = this.tasks[ti].created_by else {
                        return true; // the initial task never speculates
                    };
                    let Some(r) = srcs[slot] else { return true };
                    this.hints
                        .get(&trigger)
                        .map(|(set, saturated)| *saturated || set.contains(&r))
                        .unwrap_or(false)
                };
                let ra_sync = reg_sync(0, self);
                let rb_sync = reg_sync(1, self);
                // A register slot gates dispatch when its producer is in
                // the divert queue (the chaining rule — unconditional, or
                // the scheduler stops self-draining) or when it is an
                // inter-task dependence the hint entry says to synchronize.
                let reg_gate = |p: u32, sync: bool, this: &Self| -> bool {
                    this.state[p as usize].in_divert
                        || (sync && p < task_start && this.state[p as usize].done_at > this.cycle)
                };
                let needs_divert = ra.map(|p| reg_gate(p, ra_sync, self)).unwrap_or(false)
                    || rb.map(|p| reg_gate(p, rb_sync, self)).unwrap_or(false)
                    || mem_producer
                        .map(|p| gates(p, predict_mem_sync, &self.state))
                        .unwrap_or(false);
                // Register slots proceeding despite an unresolved
                // inter-task producer are speculative.
                let task_start_now = self.tasks[ti].start;
                let reg_spec = |sync: bool, p: Option<u32>, this: &Self| -> bool {
                    !sync
                        && p.map(|p| {
                            p < task_start_now
                                && !this.state[p as usize].in_divert
                                && this.state[p as usize].done_at > this.cycle
                        })
                        .unwrap_or(false)
                };
                let reg_speculative = [reg_spec(ra_sync, ra, self), reg_spec(rb_sync, rb, self)];
                // Speculative load: an inter-task memory producer exists,
                // is not done, and the predictor chose not to synchronize.
                let mem_speculative = self.cfg.memory_dependence == DependenceMode::StoreSet
                    && !predict_mem_sync
                    && mem_producer
                        .map(|p| {
                            p < task_start
                                && !self.state[p as usize].in_divert
                                && self.state[p as usize].done_at > self.cycle
                        })
                        .unwrap_or(false);
                // Train down predicted syncs whose producer was long done.
                if self.cfg.memory_dependence == DependenceMode::StoreSet && predict_mem_sync {
                    if let Some(p) = mem_producer {
                        if p < task_start && self.state[p as usize].done_at <= self.cycle {
                            self.ssit.train_unnecessary(e.pc);
                        }
                    }
                }
                if needs_divert {
                    if self.divert.len() >= self.cfg.divert_entries {
                        self.tasks[ti].blocked = true;
                        break;
                    }
                    self.divert.push_back(idx);
                    let st = &mut self.state[idx as usize];
                    st.dispatched = true;
                    st.dispatched_at = self.cycle;
                    st.in_divert = true;
                    st.task_start = task_start;
                    st.mem_speculative = mem_speculative;
                    st.reg_speculative = reg_speculative;
                    self.stats.diverted += 1;
                    self.tasks[ti].divert_count += 1;
                    self.record(SimEvent::Divert {
                        cycle: self.cycle,
                        task: self.tasks[ti].uid,
                        index: idx,
                    });
                } else {
                    // Reserve scheduler slots: one for divert release, one
                    // for the oldest task.
                    let sched_limit = if ti == 0 {
                        self.cfg.scheduler_entries.saturating_sub(1)
                    } else {
                        self.cfg.scheduler_entries.saturating_sub(2)
                    };
                    if self.sched.len() >= sched_limit {
                        self.tasks[ti].blocked = true;
                        break;
                    }
                    self.sched.push(idx);
                    let st = &mut self.state[idx as usize];
                    st.dispatched = true;
                    st.dispatched_at = self.cycle;
                    st.task_start = task_start;
                    st.mem_speculative = mem_speculative;
                    st.reg_speculative = reg_speculative;
                    if cfg!(debug_assertions) {
                        self.assert_sched_entry_sane(idx, "dispatch");
                    }
                }
                self.rob_used += 1;
                self.tasks[ti].fq.pop_front();
                budget -= 1;
                if budget == 0 {
                    break;
                }
            }
        }
    }

    // ---- fetch ---------------------------------------------------------------

    fn fetch(&mut self, source: &mut dyn SpawnSource) {
        let n = self.trace.len() as u32;
        // Determine eligibility (into the reused per-cycle buffer) and
        // clear resolved branch waits.
        let mut eligible = std::mem::take(&mut self.eligible);
        eligible.clear();
        for ti in 0..self.tasks.len() {
            let end = self.tasks[ti].end.min(n);
            if self.tasks[ti].fetch_next >= end {
                self.evaluate_profit(ti);
                continue;
            }
            if let Some(b) = self.tasks[ti].waiting_branch {
                let bs = self.state[b as usize];
                let resolved = bs.done_at <= self.cycle
                    && self.cycle >= bs.fetched_at + self.cfg.misprediction_penalty;
                if resolved {
                    self.tasks[ti].waiting_branch = None;
                } else {
                    self.stats.fetch_stall_branch_cycles += 1;
                    self.tasks[ti].stall_since_spawn += 1;
                    self.tasks[ti].stall_flag = Some(Bucket::BranchStall);
                    continue;
                }
            }
            if self.cycle < self.tasks[ti].fetch_resume_at {
                // Attribute the wait to its cause (the seed charged all
                // three to `fetch_stall_icache_cycles`, inflating the
                // icache figure on squash- or spawn-heavy runs).
                match self.tasks[ti].resume_reason {
                    ResumeKind::Icache => {
                        self.stats.fetch_stall_icache_cycles += 1;
                        self.tasks[ti].stall_flag = Some(Bucket::IcacheStall);
                    }
                    ResumeKind::Squash => {
                        self.stats.squash_recovery_cycles += 1;
                        self.tasks[ti].stall_flag = Some(Bucket::SquashRecovery);
                    }
                    ResumeKind::Spawn => {
                        self.stats.spawn_setup_cycles += 1;
                        self.tasks[ti].stall_flag = Some(Bucket::SpawnSetup);
                    }
                }
                self.tasks[ti].stall_since_spawn += 1;
                continue;
            }
            if self.tasks[ti].fq.len() >= self.cfg.fetch_queue_entries {
                self.tasks[ti].blocked = true;
                continue;
            }
            eligible.push(ti);
        }
        // Biased ICount: fewest in-flight instructions first (§3.2).
        eligible.sort_by_key(|&ti| self.tasks[ti].inflight);
        // Tasks beyond the per-cycle fetch port limit lose arbitration
        // this cycle (a structural stall, not a pipeline one).
        for &ti in eligible.iter().skip(self.cfg.fetch_tasks_per_cycle) {
            self.tasks[ti].blocked = true;
        }
        eligible.truncate(self.cfg.fetch_tasks_per_cycle);

        let mut budget = self.cfg.width;
        let line_bytes = self.cfg.l1i.line_bytes as u64;
        let mut head = 0;
        while head < eligible.len() {
            let ti = eligible[head];
            head += 1;
            while budget > 0 && self.tasks[ti].fq.len() < self.cfg.fetch_queue_entries {
                let idx = self.tasks[ti].fetch_next;
                if idx >= self.tasks[ti].end.min(n) {
                    break;
                }
                let e = self.trace.entry(idx as usize);
                // Instruction cache: access per line transition.
                let line = e.pc.byte_addr() / line_bytes;
                if line != self.tasks[ti].last_fetch_line {
                    let lat = self.hier.access_ifetch(e.pc.byte_addr());
                    if lat > self.cfg.l1_hit_latency {
                        self.tasks[ti].fetch_resume_at = self.cycle + lat;
                        self.tasks[ti].resume_reason = ResumeKind::Icache;
                        self.tasks[ti].last_fetch_line = line;
                        break;
                    }
                    self.tasks[ti].last_fetch_line = line;
                }
                // Fetch the instruction.
                {
                    let s = &mut self.state[idx as usize];
                    s.fetched_at = self.cycle;
                    s.task_start = self.tasks[ti].start;
                }
                self.tasks[ti].fq.push_back(idx);
                self.tasks[ti].inflight += 1;
                self.tasks[ti].fetch_next += 1;
                budget -= 1;

                // Task Spawn Unit: only the tail task spawns (§3.2),
                // unless the §6 any-task extension is enabled.
                if (ti == self.tasks.len() - 1 || self.cfg.spawn_from_any_task)
                    && self.try_spawn(ti, idx, source)
                {
                    // A non-tail insertion at ti+1 shifts every later
                    // task index; fix up the rest of this cycle's
                    // fetch schedule.
                    for e in eligible[head..].iter_mut() {
                        if *e > ti {
                            *e += 1;
                        }
                    }
                }

                // Control flow: at most one taken transfer per task per
                // cycle; mispredictions stall this task until resolution.
                match e.class() {
                    InstClass::CondBranch => {
                        if self.predictions.mispredicted(idx as usize) {
                            self.tasks[ti].waiting_branch = Some(idx);
                            break;
                        }
                        if e.taken {
                            break;
                        }
                    }
                    InstClass::Ret | InstClass::IndirectJump => {
                        if self.predictions.mispredicted(idx as usize) {
                            self.tasks[ti].waiting_branch = Some(idx);
                        }
                        break;
                    }
                    InstClass::Call => {
                        if self.predictions.mispredicted(idx as usize) {
                            self.tasks[ti].waiting_branch = Some(idx);
                        }
                        break;
                    }
                    InstClass::Jump | InstClass::Halt => break,
                    _ => {}
                }
            }
        }
        self.eligible = eligible;
    }

    /// Debug invariant: a scheduler entry must never wait on a producer
    /// that sits in the divert queue unless the corresponding slot is
    /// speculative (otherwise the scheduler stops self-draining).
    #[allow(dead_code)]
    fn assert_sched_entry_sane(&self, idx: u32, site: &str) {
        let st = self.state[idx as usize];
        let [ra, rb] = self.dataflow.reg_producers(idx as usize);
        let mem = self.dataflow.mem_producer(idx as usize);
        let check = |p: Option<u32>, spec: bool, what: &str| {
            if let Some(p) = p {
                assert!(
                    spec || !self.state[p as usize].in_divert,
                    "cycle {}: sched entry {idx} ({site}) waits on {what} producer {p}                      which is in the divert queue (consumer spec {:?}/{})",
                    self.cycle,
                    st.reg_speculative,
                    st.mem_speculative
                );
            }
        };
        check(ra, st.reg_speculative[0], "reg0");
        check(rb, st.reg_speculative[1], "reg1");
        check(mem, st.mem_speculative, "mem");
    }

    /// Adds `reg` to the hint entry of the spawn point that created the
    /// task containing `idx` (capacity-limited: a full entry records a
    /// capacity miss instead — the spawn point will keep violating until
    /// the profitability feedback throttles it).
    fn train_hint(&mut self, idx: u32, reg: Option<polyflow_isa::Reg>) {
        let Some(reg) = reg else { return };
        let Some(task) = self.tasks.iter().find(|t| t.start <= idx && idx < t.end) else {
            return;
        };
        let Some(trigger) = task.created_by else {
            return;
        };
        let entry = self.hints.entry(trigger).or_default();
        if entry.0.contains(&reg) {
            return;
        }
        if entry.0.len() >= self.cfg.hint_register_slots {
            // The 8-byte entry cannot name another register: saturate it
            // so future tasks from this trigger synchronize conservatively
            // (and pay the full divert serialization for every inter-task
            // register — the hint-capacity cost of dependence-rich spawn
            // points such as loop iterations).
            self.stats.hint_capacity_misses += 1;
            entry.1 = true;
            return;
        }
        entry.0.push(reg);
    }

    /// Drops the youngest task entirely, refunding its ROB/scheduler/
    /// divert occupancy; the new tail's interval reopens so the discarded
    /// region is refetched later. This is the §6 "reclaim resources from
    /// younger threads" extension.
    fn reclaim_youngest(&mut self) -> Result<(), SimError> {
        let last = self.tasks.len() - 1;
        debug_assert!(last > 0);
        let start = self.tasks[last].start;
        let max_fetched = self
            .tasks
            .iter()
            .map(|t| t.fetch_next)
            .max()
            .unwrap_or(start);
        let mut discarded = 0u64;
        for i in start..max_fetched {
            let st = &mut self.state[i as usize];
            if st.fetched_at != NOT_YET {
                if st.dispatched {
                    self.rob_used -= 1;
                }
                *st = InstState::default();
                discarded += 1;
            }
        }
        self.sched.retain(|&i| i < start);
        self.divert.retain(|&i| i < start);
        let invariant = |cycle, what: &str| SimError::BrokenInvariant {
            cycle,
            detail: what.to_string(),
        };
        let popped = self
            .tasks
            .pop()
            .ok_or_else(|| invariant(self.cycle, "reclamation with no tail task"))?;
        let tail = self
            .tasks
            .last_mut()
            .ok_or_else(|| invariant(self.cycle, "reclamation left no older task"))?;
        tail.end = OPEN_END;
        self.stats.rob_reclaims += 1;
        self.record(SimEvent::Squash {
            cycle: self.cycle,
            task: popped.uid,
            discarded,
            reclaim: true,
        });
        Ok(())
    }

    /// Squashes the task containing trace index `idx` and every younger
    /// task (§3.1: "data-dependence violations lead to squashes of the
    /// violating task, as well as all tasks beyond it"). The violating
    /// task refetches from its start after the recovery penalty.
    fn squash_task_containing(&mut self, idx: u32) -> Result<(), SimError> {
        let Some(ti) = self
            .tasks
            .iter()
            .position(|t| t.start <= idx && idx < t.end)
        else {
            return Err(SimError::BrokenInvariant {
                cycle: self.cycle,
                detail: format!("in-flight instruction {idx} belongs to no task"),
            });
        };
        if ti == 0 {
            return Err(SimError::BrokenInvariant {
                cycle: self.cycle,
                detail: format!(
                    "speculative instruction {idx} belongs to the oldest task, \
                     which must never speculate"
                ),
            });
        }
        let start = self.tasks[ti].start;
        // Discard all in-flight state at or beyond the violating task.
        let max_fetched = self
            .tasks
            .iter()
            .map(|t| t.fetch_next)
            .max()
            .unwrap_or(start);
        let mut discarded = 0u64;
        for i in start..max_fetched {
            let st = &mut self.state[i as usize];
            if st.fetched_at != NOT_YET {
                if st.dispatched {
                    self.rob_used -= 1;
                }
                *st = InstState::default();
                discarded += 1;
            }
        }
        self.sched.retain(|&i| i < start);
        self.divert.retain(|&i| i < start);
        // Drop younger tasks entirely; reset the violating task.
        self.tasks.truncate(ti + 1);
        let t = &mut self.tasks[ti];
        t.fetch_next = t.start;
        t.end = OPEN_END; // it is the tail again
        t.safe_mode = true; // conservative refetch: no more speculation
        t.fq.clear();
        t.inflight = 0;
        t.waiting_branch = None;
        t.fetch_resume_at = self.cycle + self.cfg.squash_penalty;
        t.resume_reason = ResumeKind::Squash;
        t.last_fetch_line = u64::MAX;
        t.spawn_trigger = None;
        t.stall_since_spawn = 0;
        t.profit_evaluated = false;
        t.divert_count = 0;
        t.stall_flag = None;
        t.blocked = false;
        let uid = t.uid;
        self.stats.squashes += 1;
        self.stats.squashed_instructions += discarded;
        self.record(SimEvent::Squash {
            cycle: self.cycle,
            task: uid,
            discarded,
            reclaim: false,
        });
        Ok(())
    }

    /// Scores a completed spawner: if it stalled while its spawned task
    /// ran, the spawn hid latency (profitable); if it sailed through, the
    /// spawn only fragmented the fetch stream.
    fn evaluate_profit(&mut self, ti: usize) {
        if !self.cfg.profitability_feedback || self.tasks[ti].profit_evaluated {
            return;
        }
        let Some(trigger) = self.tasks[ti].spawn_trigger else {
            return;
        };
        self.tasks[ti].profit_evaluated = true;
        let profitable = self.tasks[ti].stall_since_spawn >= self.cfg.profit_stall_threshold;
        let entry = self.profit.entry(trigger).or_insert((PROFIT_MAX, 0));
        if profitable {
            // One latency-hiding instance outweighs several quiet ones: a
            // spawn point that pays off on mispredicted instances must
            // stay armed even when the branch usually predicts well.
            entry.0 = (entry.0 + 4).min(PROFIT_MAX);
        } else {
            entry.0 = (entry.0 - 1).max(0);
        }
    }

    /// Attempts a spawn from task `ti` at the fetch of trace index `idx`.
    /// Returns true if a new task was inserted (always directly after
    /// `ti`).
    fn try_spawn(&mut self, ti: usize, idx: u32, source: &mut dyn SpawnSource) -> bool {
        let e = self.trace.entry(idx as usize);
        let Some((target, kind)) = source.spawn_at(e) else {
            return false;
        };
        if self.tasks.len() >= self.cfg.max_tasks {
            self.stats.spawns_rejected_contexts += 1;
            return false;
        }
        // Dynamic profitability feedback (§3.1): throttle spawn points
        // whose spawners never stall afterwards, probing occasionally so
        // phase changes can re-enable them.
        if self.cfg.profitability_feedback {
            let entry = self.profit.entry(e.pc).or_insert((PROFIT_MAX, 0));
            if entry.0 == 0 {
                entry.1 += 1;
                if !entry.1.is_multiple_of(16) {
                    self.stats.spawns_rejected_unprofitable += 1;
                    return false;
                }
            }
        }
        let n = self.trace.len() as u32;
        let Some(tidx) = self.pc_index.next_at_or_after(target, idx + 1) else {
            self.stats.spawns_rejected_distance += 1;
            return false;
        };
        if tidx >= n
            || tidx - idx > self.cfg.max_spawn_distance
            || tidx - idx < self.cfg.min_spawn_distance
        {
            self.stats.spawns_rejected_distance += 1;
            return false;
        }
        // A non-tail spawner (any-task extension) may only split its own
        // interval: the target must fall before the spawner's current end,
        // otherwise the region already belongs to a younger task.
        let old_end = self.tasks[ti].end;
        if tidx >= old_end {
            self.stats.spawns_rejected_distance += 1;
            return false;
        }
        // Split the spawner's interval at `tidx`; the new context becomes
        // fetchable after the spawn overhead elapses.
        self.tasks[ti].end = tidx;
        self.tasks[ti].spawn_trigger = Some(e.pc);
        self.tasks[ti].stall_since_spawn = 0;
        self.tasks[ti].profit_evaluated = false;
        let mut t = Task::new(tidx);
        t.end = old_end;
        t.created_by = Some(e.pc);
        // Tasks from a saturated hint entry synchronize everything.
        t.safe_mode = self
            .hints
            .get(&e.pc)
            .map(|(_, saturated)| *saturated)
            .unwrap_or(false);
        t.fetch_resume_at = self.cycle + self.cfg.spawn_overhead_cycles;
        t.resume_reason = ResumeKind::Spawn;
        t.uid = self.account.add_task(tidx, e.pc, kind, self.cycle);
        // The creation cycle is itself spawn-setup time: the new context
        // exists but cannot fetch until the overhead elapses. Charging it
        // here keeps `spawn_setup_cycles` equal to the SpawnSetup bucket.
        if self.cfg.spawn_overhead_cycles > 0 {
            t.stall_flag = Some(Bucket::SpawnSetup);
            self.stats.spawn_setup_cycles += 1;
        }
        let uid = t.uid;
        self.tasks.insert(ti + 1, t);
        self.stats.spawns.add(kind);
        self.stats.max_live_tasks = self.stats.max_live_tasks.max(self.tasks.len());
        self.stats.spawn_log.push(crate::metrics::SpawnEvent {
            cycle: self.cycle,
            trigger: e.pc,
            target,
            target_index: tidx,
            kind,
            live_tasks: self.tasks.len() as u8,
        });
        self.record(SimEvent::Spawn {
            cycle: self.cycle,
            task: uid,
            trigger: e.pc,
            target,
            target_index: tidx,
            kind,
            live_tasks: self.tasks.len() as u8,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spawn_source::{NoSpawn, StaticSpawnSource};
    use polyflow_core::{Policy, ProgramAnalysis};
    use polyflow_isa::{execute_window, AluOp, Cond, Program, ProgramBuilder, Reg};

    fn counted_loop(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.bind_label(top);
        b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, iters, top);
        b.halt();
        b.end_function();
        b.build().unwrap()
    }

    fn sim_baseline(p: &Program, window: u64) -> SimResult {
        let trace = execute_window(p, window).unwrap().trace;
        let cfg = MachineConfig::superscalar();
        let prepared = PreparedTrace::new(&trace, &cfg);
        simulate(&prepared, &cfg, &mut NoSpawn)
    }

    #[test]
    fn empty_trace_is_trivial() {
        let trace = Trace::new();
        let cfg = MachineConfig::superscalar();
        let prepared = PreparedTrace::new(&trace, &cfg);
        let r = simulate(&prepared, &cfg, &mut NoSpawn);
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn superscalar_retires_everything() {
        let p = counted_loop(100);
        let r = sim_baseline(&p, 100_000);
        // li + 100 iterations x (add, add, li r28, br) + halt.
        assert_eq!(r.instructions, 402);
        assert!(r.cycles > 0);
        assert!(r.ipc() > 0.1, "IPC {}", r.ipc());
        assert!(r.ipc() <= 8.0, "IPC cannot exceed width");
        assert_eq!(r.total_spawns(), 0);
    }

    #[test]
    fn ipc_is_plausible_for_serial_dependence_chain() {
        // Every instruction depends on the previous: IPC near (just above) 1
        // is impossible to beat... actually the increments of r2 and r1
        // are two independent chains, so IPC can approach 2-3.
        let p = counted_loop(500);
        let r = sim_baseline(&p, 100_000);
        assert!(r.ipc() > 0.5 && r.ipc() < 8.0, "IPC {}", r.ipc());
    }

    #[test]
    fn polyflow_with_no_spawns_matches_superscalar_cycles_closely() {
        let p = counted_loop(200);
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let ss_cfg = MachineConfig::superscalar();
        let pf_cfg = MachineConfig::hpca07();
        let prep_ss = PreparedTrace::new(&trace, &ss_cfg);
        let prep_pf = PreparedTrace::new(&trace, &pf_cfg);
        let a = simulate(&prep_ss, &ss_cfg, &mut NoSpawn);
        let b = simulate(&prep_pf, &pf_cfg, &mut NoSpawn);
        // One task, no spawns: the machines are identical.
        assert_eq!(a.cycles, b.cycles);
    }

    /// A loop whose body contains a hard-to-predict hammock: postdominator
    /// spawning should beat the superscalar.
    fn hard_hammock_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        let els = b.fresh_label("els");
        let join = b.fresh_label("join");
        // r10 = pseudo-random via LCG; branch on low bit.
        b.li(Reg::R10, 12345);
        b.li(Reg::R1, 0);
        b.bind_label(top);
        b.li(Reg::R11, 1103515245);
        b.alu(AluOp::Mul, Reg::R10, Reg::R10, Reg::R11);
        b.alui(AluOp::Add, Reg::R10, Reg::R10, 12345);
        b.alui(AluOp::Srl, Reg::R12, Reg::R10, 16);
        b.alui(AluOp::And, Reg::R12, Reg::R12, 1);
        b.br_imm(Cond::Eq, Reg::R12, 0, els);
        // then: long-ish computation
        for _ in 0..6 {
            b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
        }
        b.jmp(join);
        b.bind_label(els);
        for _ in 0..6 {
            b.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
        }
        b.bind_label(join);
        // independent work after the join
        for _ in 0..4 {
            b.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
        }
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 400, top);
        b.halt();
        b.end_function();
        b.build().unwrap()
    }

    #[test]
    fn hammock_spawning_beats_superscalar_on_hard_branches() {
        let p = hard_hammock_program();
        let trace = execute_window(&p, 200_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);

        let ss_cfg = MachineConfig::superscalar();
        let prep = PreparedTrace::new(&trace, &ss_cfg);
        let base = simulate(&prep, &ss_cfg, &mut NoSpawn);

        let pf_cfg = MachineConfig::hpca07();
        let prep_pf = PreparedTrace::new(&trace, &pf_cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let pf = simulate(&prep_pf, &pf_cfg, &mut src);

        assert!(pf.total_spawns() > 0, "no spawns happened");
        let speedup = pf.speedup_percent_over(&base);
        assert!(
            speedup > 5.0,
            "expected speedup from hammock spawning, got {speedup:.1}% \
             (base {} cycles, pf {} cycles, {} spawns)",
            base.cycles,
            pf.cycles,
            pf.total_spawns()
        );
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // Replaying different traces/policies through one SimScratch must
        // give exactly the results of fresh-allocation runs.
        let p1 = hard_hammock_program();
        let p2 = counted_loop(300);
        let t1 = execute_window(&p1, 150_000).unwrap().trace;
        let t2 = execute_window(&p2, 150_000).unwrap().trace;
        let ss = MachineConfig::superscalar();
        let pf = MachineConfig::hpca07();
        let analysis = ProgramAnalysis::analyze(&p1);

        let mut scratch = SimScratch::default();
        for _ in 0..2 {
            for (trace, cfg) in [(&t1, &ss), (&t2, &ss), (&t1, &pf)] {
                let prep = PreparedTrace::new(trace, cfg);
                let fresh = simulate(&prep, cfg, &mut NoSpawn);
                let reused = simulate_with(&prep, cfg, &mut NoSpawn, &mut scratch);
                assert_eq!(fresh, reused);
            }
            let prep = PreparedTrace::new(&t1, &pf);
            let table = analysis.spawn_table(Policy::Postdoms);
            let fresh = simulate(&prep, &pf, &mut StaticSpawnSource::new(table.clone()));
            let reused =
                simulate_with(&prep, &pf, &mut StaticSpawnSource::new(table), &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn shared_oracles_match_fresh_preparation() {
        // A PreparedTrace assembled from shared oracles must be
        // indistinguishable from one computed from scratch.
        let p = hard_hammock_program();
        let trace = execute_window(&p, 150_000).unwrap().trace;
        let ss = MachineConfig::superscalar();
        let pf = MachineConfig::hpca07();
        assert_eq!(ss.predictor_key(), pf.predictor_key());

        let fresh = PreparedTrace::new(&trace, &pf);
        let shared = PreparedTrace::with_oracles(
            fresh.trace_arc(),
            fresh.dataflow_arc(),
            fresh.pc_index_arc(),
            &ss,
        );
        let analysis = ProgramAnalysis::analyze(&p);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let a = simulate(&fresh, &pf, &mut src);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let b = simulate(&shared, &pf, &mut src);
        assert_eq!(a, b);
    }

    #[test]
    fn task_contexts_are_bounded() {
        let p = hard_hammock_program();
        let trace = execute_window(&p, 200_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig::hpca07();
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let r = simulate(&prep, &cfg, &mut src);
        assert!(r.max_live_tasks <= cfg.max_tasks);
        assert!(r.max_live_tasks >= 2, "spawning should create tasks");
    }

    #[test]
    fn spawn_distance_cap_rejects_far_targets() {
        let p = hard_hammock_program();
        let trace = execute_window(&p, 200_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig {
            max_spawn_distance: 0,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let r = simulate(&prep, &cfg, &mut src);
        assert_eq!(r.total_spawns(), 0);
        assert!(r.spawns_rejected_distance > 0);
    }

    #[test]
    fn divert_queue_sees_inter_task_dependences() {
        // Loop spawning creates induction-variable dependences between
        // tasks: diverted instructions must appear.
        // A loop whose iterations are chained through a slow multiply:
        // the next task's consumer dispatches while the producer is still
        // executing, so it must divert.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 3);
        b.bind_label(top);
        for _ in 0..4 {
            b.alu(AluOp::Mul, Reg::R2, Reg::R2, Reg::R2);
        }
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 300, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        // Disable the profitability throttle: this test wants the spawns
        // (and their diverted consumers) to keep happening even though a
        // predictable loop makes them unprofitable.
        let cfg = MachineConfig {
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r = simulate(&prep, &cfg, &mut src);
        assert!(r.total_spawns() > 0);
        assert!(r.diverted > 0, "loop spawns must divert the multiply chain");
    }

    /// A loop whose iterations communicate through memory with the store
    /// late and the load early: spawned next-iteration tasks speculate on
    /// the dependence and must be squashed in store-set mode.
    fn memory_chained_loop() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let shared = b.alloc_data(&[3]);
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R20, shared as i64);
        b.bind_label(top);
        b.load(Reg::R2, Reg::R20, 0); // early load of last iteration's value
        for _ in 0..4 {
            b.alu(AluOp::Mul, Reg::R2, Reg::R2, Reg::R2); // slow
        }
        b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
        b.store(Reg::R2, Reg::R20, 0); // late store
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 300, top);
        b.halt();
        b.end_function();
        b.build().unwrap()
    }

    #[test]
    fn store_set_mode_squashes_speculative_loads() {
        let p = memory_chained_loop();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig {
            memory_dependence: crate::store_set::DependenceMode::StoreSet,
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r = simulate(&prep, &cfg, &mut src);
        assert!(r.total_spawns() > 0, "loop spawns must fire");
        assert!(
            r.squashes > 0,
            "speculative loads must violate at least once"
        );
        assert!(r.squashed_instructions > 0);
        assert_eq!(r.instructions as usize, trace.len(), "everything retires");
        // The predictor learns: squashes stay far below the spawn count.
        assert!(
            r.squashes < r.total_spawns(),
            "{} squashes vs {} spawns — predictor never learned",
            r.squashes,
            r.total_spawns()
        );
    }

    #[test]
    fn oracle_mode_never_squashes() {
        let p = memory_chained_loop();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig {
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r = simulate(&prep, &cfg, &mut src);
        assert!(r.total_spawns() > 0);
        assert_eq!(r.squashes, 0);
        assert_eq!(r.squashed_instructions, 0);
    }

    #[test]
    fn store_set_results_match_oracle_work() {
        // Same retired work either way; squashing only costs cycles.
        let p = memory_chained_loop();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let mk = |mode| MachineConfig {
            memory_dependence: mode,
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let oracle_cfg = mk(crate::store_set::DependenceMode::OracleSync);
        let ss_cfg = mk(crate::store_set::DependenceMode::StoreSet);
        let prep = PreparedTrace::new(&trace, &oracle_cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let oracle = simulate(&prep, &oracle_cfg, &mut src);
        let prep = PreparedTrace::new(&trace, &ss_cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let ss = simulate(&prep, &ss_cfg, &mut src);
        assert_eq!(oracle.instructions, ss.instructions);
    }

    #[test]
    fn hint_entry_model_squashes_then_learns() {
        // A loop carrying one register chain: the first spawned instance
        // violates (empty hint entry), trains the entry, and later
        // instances divert cleanly.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 3);
        b.bind_label(top);
        for _ in 0..4 {
            b.alu(AluOp::Mul, Reg::R2, Reg::R2, Reg::R2);
        }
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 300, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig {
            register_dependence: crate::store_set::DependenceMode::StoreSet,
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r = simulate(&prep, &cfg, &mut src);
        assert!(r.total_spawns() > 0);
        assert!(r.register_violations > 0, "cold hint entries must violate");
        assert!(
            r.register_violations < r.total_spawns(),
            "the hint entry must learn ({} violations / {} spawns)",
            r.register_violations,
            r.total_spawns()
        );
        assert_eq!(r.instructions as usize, trace.len());
    }

    #[test]
    fn hint_entry_capacity_limits_wide_dependence_sets() {
        // Six live loop-carried chains exceed the 4-slot hint entry: the
        // spawn point keeps violating and records capacity misses.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.bind_label(top);
        for r in [Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7] {
            b.alu(AluOp::Mul, r, r, r);
            b.alui(AluOp::Add, r, r, 1);
        }
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 300, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig {
            register_dependence: crate::store_set::DependenceMode::StoreSet,
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r = simulate(&prep, &cfg, &mut src);
        assert!(r.hint_capacity_misses > 0, "entry capacity must bind");
        assert_eq!(r.instructions as usize, trace.len());
    }

    #[test]
    fn any_task_spawning_splits_inner_intervals() {
        // The §6 extension: with nested hammocks, the inner join can be
        // spawned even though the spawner is no longer the tail.
        let p = hard_hammock_program();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let mk = |any| MachineConfig {
            spawn_from_any_task: any,
            ..MachineConfig::hpca07()
        };
        let run = |cfg: &MachineConfig| {
            let prep = PreparedTrace::new(&trace, cfg);
            let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
            simulate(&prep, cfg, &mut src)
        };
        let tail_only = run(&mk(false));
        let any_task = run(&mk(true));
        assert_eq!(tail_only.instructions, any_task.instructions);
        // Any-task spawning can only add opportunities.
        assert!(any_task.total_spawns() >= tail_only.total_spawns());
        // Non-tail spawns appear as out-of-order target indices in the log.
        let monotone = any_task
            .spawn_log
            .windows(2)
            .all(|w| w[0].target_index < w[1].target_index);
        if any_task.total_spawns() > tail_only.total_spawns() {
            assert!(!monotone, "extra spawns should include interval splits");
        }
    }

    #[test]
    fn rob_reclamation_frees_entries_under_pressure() {
        // A tiny ROB plus a long-latency oldest task forces reclamation.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let region = b.alloc_zeroed(64 * 1024); // L2-missing region
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R20, region as i64);
        b.bind_label(top);
        // A slow load the oldest task stalls retirement on.
        b.alui(AluOp::Sll, Reg::R2, Reg::R1, 9);
        b.alu(AluOp::Add, Reg::R3, Reg::R20, Reg::R2);
        b.load(Reg::R4, Reg::R3, 0);
        b.alu(AluOp::Add, Reg::R5, Reg::R5, Reg::R4);
        for _ in 0..20 {
            b.alui(AluOp::Add, Reg::R6, Reg::R6, 1);
        }
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 400, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig {
            rob_entries: 48,
            rob_reclamation: true,
            rob_reclaim_after: 4,
            profitability_feedback: false,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r = simulate(&prep, &cfg, &mut src);
        assert_eq!(r.instructions as usize, trace.len());
        assert!(r.rob_reclaims > 0, "pressure should trigger reclamation");
        // Default configuration never reclaims.
        let dflt = MachineConfig::hpca07();
        let prep = PreparedTrace::new(&trace, &dflt);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Loop));
        let r2 = simulate(&prep, &dflt, &mut src);
        assert_eq!(r2.rob_reclaims, 0);
    }

    #[test]
    fn max_cycles_budget_returns_typed_error() {
        let p = counted_loop(200);
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let cfg = MachineConfig {
            max_cycles: 10,
            ..MachineConfig::superscalar()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let e = try_simulate(&prep, &cfg, &mut NoSpawn).unwrap_err();
        match e {
            SimError::CyclesExceeded {
                max_cycles,
                retired,
                instructions,
            } => {
                assert_eq!(max_cycles, 10);
                assert_eq!(instructions as usize, trace.len());
                assert!(retired < instructions);
            }
            other => panic!("expected CyclesExceeded, got {other}"),
        }
        // The default budget is unreachable.
        let cfg = MachineConfig::superscalar();
        let prep = PreparedTrace::new(&trace, &cfg);
        assert!(try_simulate(&prep, &cfg, &mut NoSpawn).is_ok());
    }

    #[test]
    fn livelock_watchdog_carries_postmortem_state() {
        // A one-cycle window trips during the front-end fill (decode
        // latency guarantees some retirement-free cycles), exercising the
        // post-mortem payload without needing a genuine simulator bug.
        let p = counted_loop(50);
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let cfg = MachineConfig {
            livelock_window: 2,
            ..MachineConfig::superscalar()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        let e = try_simulate(&prep, &cfg, &mut NoSpawn).unwrap_err();
        match e {
            SimError::Livelock {
                cycle,
                window,
                account,
                detail,
                ..
            } => {
                assert_eq!(window, 2);
                assert!(cycle >= 2);
                // The ledger travels with the error and balances.
                assert!(account.check().is_ok());
                assert!(detail.contains("stuck inst"));
            }
            other => panic!("expected Livelock, got {other}"),
        }
    }

    #[test]
    fn malformed_trace_is_rejected_up_front() {
        let p = counted_loop(20);
        let mut trace = execute_window(&p, 100_000).unwrap().trace;
        // Corrupt the continuity of the retirement stream.
        let mid = trace.len() / 2;
        trace.entries_mut()[mid].next_pc = polyflow_isa::Pc::new(999);
        let cfg = MachineConfig::superscalar();
        let prep = PreparedTrace::new(&trace, &cfg);
        let e = try_simulate(&prep, &cfg, &mut NoSpawn).unwrap_err();
        assert!(matches!(e, SimError::MalformedTrace(_)), "got {e}");
    }

    #[test]
    #[should_panic(expected = "cycle budget exceeded")]
    fn infallible_wrapper_panics_with_the_rendered_error() {
        let p = counted_loop(200);
        let trace = execute_window(&p, 100_000).unwrap().trace;
        let cfg = MachineConfig {
            max_cycles: 10,
            ..MachineConfig::superscalar()
        };
        let prep = PreparedTrace::new(&trace, &cfg);
        simulate(&prep, &cfg, &mut NoSpawn);
    }

    #[test]
    fn try_simulate_matches_simulate_exactly() {
        let p = hard_hammock_program();
        let trace = execute_window(&p, 150_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig::hpca07();
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let a = simulate(&prep, &cfg, &mut src);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let b = try_simulate(&prep, &cfg, &mut src).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn retirement_is_complete_and_in_order() {
        // The machine retires exactly trace.len() instructions; IPC bounded.
        let p = hard_hammock_program();
        let trace = execute_window(&p, 50_000).unwrap().trace;
        let analysis = ProgramAnalysis::analyze(&p);
        let cfg = MachineConfig::hpca07();
        let prep = PreparedTrace::new(&trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let r = simulate(&prep, &cfg, &mut src);
        assert_eq!(r.instructions as usize, trace.len());
        assert!(r.ipc() <= cfg.width as f64);
    }
}
