//! Per-phase wall-clock profiling for the simulation loop, behind the
//! `POLYFLOW_SIM_PROFILE` environment variable.
//!
//! When the variable is set (non-empty, not `"0"`), every run allocates
//! a [`PhaseProfile`] and the machine loop brackets each pipeline stage
//! with an [`Instant`](std::time::Instant) lap; `finish_into` prints one
//! JSON line to stderr per run with the per-phase milliseconds and the
//! stepped/skipped cycle split. When the variable is unset the run
//! carries a `None` and the loop's only cost is one pointer test per
//! stage — no timers, no allocation.

use crate::machine::SimTelemetry;
use std::sync::OnceLock;
use std::time::Duration;

/// Phase indices into [`PhaseProfile::spans`]. The `account` span also
/// covers the cycle-skip fast-forward, which runs between accounting and
/// the cycle increment.
pub(crate) mod phase {
    pub const RETIRE: usize = 0;
    pub const ISSUE: usize = 1;
    pub const DIVERT: usize = 2;
    pub const DISPATCH: usize = 3;
    pub const FETCH: usize = 4;
    pub const ACCOUNT: usize = 5;
    pub const COUNT: usize = 6;
    pub const LABELS: [&str; COUNT] = ["retire", "issue", "divert", "dispatch", "fetch", "account"];
}

/// Accumulated wall-clock time per pipeline stage for one run.
#[derive(Debug, Default)]
pub(crate) struct PhaseProfile {
    pub spans: [Duration; phase::COUNT],
    /// Instructions issued (functional-unit grants).
    pub issued: u64,
    /// Wakeups pushed / drained by the event-driven issue stage.
    pub wakes_pushed: u64,
    pub wakes_popped: u64,
    /// Full ready-set rebuilds (post-squash) and their summed entry count.
    pub rebuilds: u64,
    pub rebuild_entries: u64,
    /// Cycles on which the issue stage selected a non-empty batch.
    pub issue_cycles: u64,
}

impl PhaseProfile {
    /// One profile per run when `POLYFLOW_SIM_PROFILE` is enabled, else
    /// `None`. The environment is consulted once per process.
    pub fn from_env() -> Option<Box<PhaseProfile>> {
        static ENABLED: OnceLock<bool> = OnceLock::new();
        let on = *ENABLED.get_or_init(|| {
            std::env::var("POLYFLOW_SIM_PROFILE").is_ok_and(|v| !v.is_empty() && v != "0")
        });
        on.then(|| Box::new(PhaseProfile::default()))
    }

    /// Prints the run's per-phase breakdown as one JSON line on stderr.
    pub fn report(&self, cycles: u64, telemetry: &SimTelemetry) {
        use std::fmt::Write as _;
        let mut parts = String::new();
        for (i, label) in phase::LABELS.iter().enumerate() {
            let _ = write!(
                parts,
                "{}\"{label}_ms\":{:.3}",
                if i == 0 { "" } else { "," },
                self.spans[i].as_secs_f64() * 1e3
            );
        }
        eprintln!(
            "{{\"sim_profile\":{{{parts},\"cycles\":{cycles},\"executed_cycles\":{},\"skipped_cycles\":{},\"fast_forwards\":{},\"issued\":{},\"wakes_pushed\":{},\"wakes_popped\":{},\"rebuilds\":{},\"rebuild_entries\":{},\"issue_cycles\":{}}}}}",
            telemetry.executed_cycles, telemetry.skipped_cycles, telemetry.fast_forwards,
            self.issued, self.wakes_pushed, self.wakes_popped,
            self.rebuilds, self.rebuild_entries, self.issue_cycles
        );
    }
}
