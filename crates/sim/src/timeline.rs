//! ASCII rendering of a run's task structure — a textual version of the
//! paper's Figure 4, where the "degree of speculation" runs downward and
//! program order runs to the right.

use crate::metrics::SimResult;
use std::fmt::Write as _;

/// Renders the spawn log of `result` as an ASCII timeline.
///
/// ```
/// use polyflow_sim::{timeline, SimResult};
///
/// let quiet = SimResult::default();
/// assert!(timeline::render(&quiet, 80).contains("no spawns"));
/// ```
///
/// Each spawn becomes one row; the bar spans the trace (scaled to
/// `width` columns) with `#` marking where the spawned task begins.
/// Rows read top to bottom in spawn order, so the picture shows the
/// machine unfolding the control-dependence graph: every row is a fetch
/// stream that ran concurrently with the ones above it.
///
/// Returns a note instead of a chart when the run performed no spawns.
pub fn render(result: &SimResult, width: usize) -> String {
    let width = width.clamp(20, 200);
    if result.spawn_log.is_empty() {
        return "(no spawns: superscalar-equivalent execution)\n".to_string();
    }
    let total = result.instructions.max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace position 0 {:->w$} {}",
        ">",
        total,
        w = width.saturating_sub(4)
    );
    for ev in &result.spawn_log {
        // Map trace index 0 to column 0 and index `total - 1` to column
        // `width - 1` (endpoint-exact). The seed scaled by `width / total`,
        // which could never reach the last column and collapsed every mark
        // to column 0 whenever `target_index * width < total`.
        let pos = ((ev.target_index as u64).min(total - 1) * (width as u64 - 1)
            / (total - 1).max(1)) as usize;
        debug_assert!(pos < width);
        let mut bar = vec![b'-'; width];
        bar[pos] = b'#';
        let _ = writeln!(
            out,
            "|{}| cycle {:>8} {} {} -> {} ({} live)",
            String::from_utf8_lossy(&bar),
            ev.cycle,
            ev.kind,
            ev.trigger,
            ev.target,
            ev.live_tasks
        );
    }
    out
}

/// Summarizes spawn activity: counts per kind plus first/last cycle.
pub fn summary(result: &SimResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} spawns (loop {}, loopFT {}, procFT {}, hammock {}, other {}), max {} live tasks",
        result.total_spawns(),
        result.spawns.loop_spawns,
        result.spawns.loop_ft,
        result.spawns.proc_ft,
        result.spawns.hammocks,
        result.spawns.other,
        result.max_live_tasks
    );
    if let (Some(first), Some(last)) = (result.spawn_log.first(), result.spawn_log.last()) {
        let _ = writeln!(
            out,
            "first spawn at cycle {}, last at cycle {} (of {})",
            first.cycle, last.cycle, result.cycles
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SpawnEvent;
    use polyflow_core::SpawnKind;
    use polyflow_isa::Pc;

    fn result_with_spawns(n: u32) -> SimResult {
        let mut r = SimResult {
            cycles: 1000,
            instructions: 500,
            max_live_tasks: 3,
            ..SimResult::default()
        };
        for i in 0..n {
            r.spawns.add(SpawnKind::Hammock);
            r.spawn_log.push(SpawnEvent {
                cycle: 10 * (i as u64 + 1),
                trigger: Pc::new(i),
                target: Pc::new(i + 5),
                target_index: 100 * (i + 1),
                kind: SpawnKind::Hammock,
                live_tasks: 2,
            });
        }
        r
    }

    #[test]
    fn empty_run_renders_a_note() {
        let r = SimResult::default();
        assert!(render(&r, 80).contains("no spawns"));
    }

    #[test]
    fn rows_match_spawns_and_marks_scale() {
        let r = result_with_spawns(4);
        let text = render(&r, 100);
        assert_eq!(text.matches('#').count(), 4);
        assert_eq!(text.lines().count(), 5); // header + 4 rows
                                             // Marks move rightward with target_index.
        let cols: Vec<usize> = text.lines().skip(1).map(|l| l.find('#').unwrap()).collect();
        assert!(cols.windows(2).all(|w| w[0] < w[1]), "{cols:?}");
    }

    #[test]
    fn width_is_clamped() {
        let r = result_with_spawns(1);
        let narrow = render(&r, 1);
        assert!(narrow.lines().nth(1).unwrap().len() >= 20);
    }

    #[test]
    fn summary_reports_counts() {
        let r = result_with_spawns(2);
        let s = summary(&r);
        assert!(s.contains("2 spawns"));
        assert!(s.contains("hammock 2"));
        assert!(s.contains("first spawn at cycle 10"));
    }

    /// A spawn target in one trace at one index.
    fn one_spawn(target_index: u32, instructions: u64) -> SimResult {
        let mut r = SimResult {
            cycles: 100,
            instructions,
            ..SimResult::default()
        };
        r.spawns.add(SpawnKind::Loop);
        r.spawn_log.push(SpawnEvent {
            cycle: 1,
            trigger: Pc::new(0),
            target: Pc::new(1),
            target_index,
            kind: SpawnKind::Loop,
            live_tasks: 2,
        });
        r
    }

    fn mark_column(r: &SimResult, width: usize) -> usize {
        render(r, width).lines().nth(1).unwrap().find('#').unwrap() - 1
    }

    /// Property sweep over every legal width: marks stay in bounds, map
    /// the endpoints exactly, and are monotone in `target_index`. The
    /// seed's `index * width / total` scaling failed the first-column
    /// property whenever `index * width < total` (short traces vs. wide
    /// widths collapsed every mark to column 0) and could never reach
    /// the last column.
    #[test]
    fn mark_scaling_properties_over_all_widths() {
        for width in 20..=200usize {
            for total in [2u64, 7, 100, 1000, 100_000] {
                // Endpoints: index 0 -> column 0, last index -> last column.
                assert_eq!(mark_column(&one_spawn(0, total), width), 0);
                assert_eq!(
                    mark_column(&one_spawn((total - 1) as u32, total), width),
                    width - 1,
                    "width {width} total {total}"
                );
                // A late index lands in the right half, even when
                // `index * width < total` (the seed's failure mode).
                let late = (total - total / 8) as u32;
                assert!(
                    mark_column(&one_spawn(late, total), width) >= width / 2,
                    "width {width} total {total} late {late}"
                );
                // Monotone and in-bounds across the whole trace.
                let mut prev = 0usize;
                for i in (0..total).step_by((total as usize / 7).max(1)) {
                    let col = mark_column(&one_spawn(i as u32, total), width);
                    assert!(col < width);
                    assert!(col >= prev, "width {width} total {total} index {i}");
                    prev = col;
                }
            }
        }
    }

    #[test]
    fn single_instruction_trace_renders_without_division_by_zero() {
        let col = mark_column(&one_spawn(0, 1), 20);
        assert_eq!(col, 0);
    }

    #[test]
    fn out_of_range_index_clamps_to_last_column() {
        // A spawn target past the trace end (defensive: spawn targets are
        // trace indices, but render must not panic on inconsistent input).
        let col = mark_column(&one_spawn(10_000, 100), 50);
        assert_eq!(col, 49);
    }

    #[test]
    fn summary_on_empty_run_has_no_first_last_line() {
        let s = summary(&SimResult::default());
        assert!(s.contains("0 spawns"));
        assert!(!s.contains("first spawn"));
    }
}
