//! The simulator's typed error taxonomy.
//!
//! Every way a [`crate::try_simulate`] run can fail is a [`SimError`]
//! variant; the infallible [`crate::simulate`] wrappers panic with the
//! same rendered message. Watchdog errors ([`SimError::Livelock`],
//! [`SimError::CyclesExceeded`]) describe the *workload/configuration*
//! pair; [`SimError::BrokenInvariant`] and
//! [`SimError::AccountingViolation`] indicate a simulator bug and carry
//! enough state for a post-mortem without a debugger attached.

use crate::account::CycleAccount;
use crate::events::SimEvent;
use polyflow_isa::TraceError;
use std::fmt;

/// A structured simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The input trace is not a legal retirement stream (see
    /// [`TraceError`] for the corruption classes). Detected up front, so
    /// the cycle model never replays garbage.
    MalformedTrace(TraceError),
    /// The livelock watchdog fired: no instruction retired in any context
    /// for `window` consecutive cycles. Carries the cycle-slot ledger and
    /// the most recent machine events for post-mortem analysis.
    Livelock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// The configured no-retirement window
        /// ([`crate::MachineConfig::livelock_window`]).
        window: u64,
        /// Instructions retired before progress stopped.
        retired: u64,
        /// The cycle-slot ledger at the time of the failure.
        account: Box<CycleAccount>,
        /// The last few machine events (flight-recorder ring), oldest
        /// first.
        recent_events: Vec<SimEvent>,
        /// Human-readable dump of the stuck instruction, its owner task,
        /// and the scheduler/divert heads.
        detail: String,
    },
    /// The hard cycle budget ([`crate::MachineConfig::max_cycles`])
    /// elapsed before the trace finished retiring.
    CyclesExceeded {
        /// The configured budget.
        max_cycles: u64,
        /// Instructions retired within the budget.
        retired: u64,
        /// Total instructions in the trace.
        instructions: u64,
    },
    /// The end-of-run cycle-accounting check failed: the per-bucket
    /// ledger does not satisfy `sum(buckets) == cycles × contexts`.
    AccountingViolation {
        /// The accountant's explanation of the imbalance.
        detail: String,
    },
    /// An internal machine invariant did not hold (formerly a panic
    /// site). Always a simulator bug, never a property of the workload.
    BrokenInvariant {
        /// Cycle at which the invariant was found broken.
        cycle: u64,
        /// Which invariant, and the state that broke it.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MalformedTrace(e) => write!(f, "malformed trace: {e}"),
            SimError::Livelock {
                cycle,
                window,
                retired,
                detail,
                ..
            } => {
                write!(
                    f,
                    "livelock: no retirement for {window} cycles at cycle {cycle} \
                     ({retired} instructions retired)\n{detail}"
                )
            }
            SimError::CyclesExceeded {
                max_cycles,
                retired,
                instructions,
            } => {
                write!(
                    f,
                    "cycle budget exceeded: {max_cycles} cycles elapsed with only \
                     {retired}/{instructions} instructions retired"
                )
            }
            SimError::AccountingViolation { detail } => {
                write!(f, "cycle-accounting violation: {detail}")
            }
            SimError::BrokenInvariant { cycle, detail } => {
                write!(f, "simulator invariant broken at cycle {cycle}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> SimError {
        SimError::MalformedTrace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::CyclesExceeded {
            max_cycles: 1000,
            retired: 12,
            instructions: 400,
        };
        assert_eq!(
            e.to_string(),
            "cycle budget exceeded: 1000 cycles elapsed with only 12/400 instructions retired"
        );
        let e = SimError::BrokenInvariant {
            cycle: 7,
            detail: "x".into(),
        };
        assert!(e.to_string().contains("cycle 7"));
        let e: SimError = TraceError::Truncated {
            last_pc: polyflow_isa::Pc::new(3),
        }
        .into();
        assert!(matches!(e, SimError::MalformedTrace(_)));
        assert!(e.to_string().starts_with("malformed trace:"));
    }
}
