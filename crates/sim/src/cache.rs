//! Set-associative LRU caches and the two-level hierarchy of Figure 8.

use crate::config::{CacheConfig, MachineConfig};

/// A set-associative cache with true-LRU replacement.
///
/// Addresses are byte addresses; the cache tracks lines only (no data).
///
/// ```
/// use polyflow_sim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64 });
/// assert!(!c.access(0x100));  // cold miss
/// assert!(c.access(0x100));   // hit
/// assert_eq!(c.misses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    /// All tags in one flat array, `ways` slots per set, MRU-first within
    /// each set (slots `[len..ways)` of a set are uninitialized).
    tags: Vec<u64>,
    /// Occupied slots per set.
    len: Vec<u32>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        Cache {
            tags: vec![0; sets * config.ways],
            len: vec![0; sets],
            ways: config.ways,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            accesses: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Accesses the line containing `addr`; returns `true` on hit.
    /// Misses insert the line (no-allocate policies are not modeled).
    /// True-LRU: the set's slots shift down to make room at MRU.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let (set, tag) = self.set_and_tag(addr);
        let l = self.len[set] as usize;
        let lane = &mut self.tags[set * self.ways..(set + 1) * self.ways];
        if let Some(pos) = lane[..l].iter().position(|&t| t == tag) {
            lane.copy_within(..pos, 1);
            lane[0] = tag;
            true
        } else {
            self.misses += 1;
            let filled = if l == self.ways { l } else { l + 1 };
            lane.copy_within(..filled - 1, 1);
            lane[0] = tag;
            self.len[set] = filled as u32;
            false
        }
    }

    /// True if the line containing `addr` is resident (no LRU update, no
    /// stats).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let l = self.len[set] as usize;
        self.tags[set * self.ways..set * self.ways + l].contains(&tag)
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in [0, 1]; 0 if never accessed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The simulated memory hierarchy: split L1 I/D over a unified L2.
///
/// Latencies follow Figure 8: an L1 miss that hits in L2 costs the L1 miss
/// latency (10 cycles); an L2 miss costs the L2 miss latency (100 cycles).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l1_hit: u64,
    l1_miss: u64,
    l2_miss: u64,
}

impl Hierarchy {
    /// Builds the hierarchy from a machine configuration.
    pub fn new(config: &MachineConfig) -> Hierarchy {
        Hierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l1_hit: config.l1_hit_latency,
            l1_miss: config.l1_miss_latency,
            l2_miss: config.l2_miss_latency,
        }
    }

    /// Instruction fetch access: latency to fill the fetch group at `addr`.
    pub fn access_ifetch(&mut self, addr: u64) -> u64 {
        if self.l1i.access(addr) {
            self.l1_hit
        } else if self.l2.access(addr) {
            self.l1_miss
        } else {
            self.l2_miss
        }
    }

    /// Data access (load or store): latency to obtain the line.
    pub fn access_data(&mut self, addr: u64) -> u64 {
        if self.l1d.access(addr) {
            self.l1_hit
        } else if self.l2.access(addr) {
            self.l1_miss
        } else {
            self.l2_miss
        }
    }

    /// The instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified second-level cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        }) // 4 sets x 2 ways
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.miss_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Set count = 4; addresses mapping to set 0: multiples of 256.
        assert!(!c.access(0));
        assert!(!c.access(256));
        assert!(c.access(0)); // refresh 0: LRU is now 256
        assert!(!c.access(512)); // evicts 256
        assert!(c.access(0));
        assert!(!c.access(256)); // was evicted
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = small();
        c.access(0);
        let misses = c.misses();
        assert!(c.probe(0));
        assert!(!c.probe(256));
        assert_eq!(c.misses(), misses);
    }

    #[test]
    fn hierarchy_latencies() {
        let mut h = Hierarchy::new(&MachineConfig::hpca07());
        // Cold: L2 miss.
        assert_eq!(h.access_data(0x1000), 100);
        // L1 hit now.
        assert_eq!(h.access_data(0x1000), 1);
        // Instruction side: cold L2 miss, then L1I hit.
        assert_eq!(h.access_ifetch(0x8000), 100);
        assert_eq!(h.access_ifetch(0x8000), 1);
        // Data access to a line resident only in L2 (brought by ifetch?
        // no — different address): evict from L1D by thrashing, keep L2.
        assert!(h.l1d().accesses() > 0);
        assert!(h.l2().accesses() > 0);
    }

    #[test]
    fn l1_miss_l2_hit_costs_ten() {
        let cfg = MachineConfig::hpca07();
        let mut h = Hierarchy::new(&cfg);
        h.access_data(0x4000); // L2 + L1D now hold the line
                               // Thrash L1D set: L1D is 16KB 4-way 64B lines -> 64 sets; lines
                               // mapping to the same set are 64*64=4096 bytes apart.
        for i in 1..=4 {
            h.access_data(0x4000 + i * 4096);
        }
        // 0x4000 evicted from L1D but still in L2.
        assert_eq!(h.access_data(0x4000), cfg.l1_miss_latency);
    }
}
