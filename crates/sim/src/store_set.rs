//! Store-set memory-dependence prediction (Chrysos & Emer, adapted).
//!
//! The paper's PolyFlow synchronizes inter-task memory dependences
//! conservatively through the divert queue, using predicted dependence
//! information; mispredicted independence causes a violation that
//! squashes the violating task and everything younger (§3.1, citing the
//! Synchronizing Store Sets report [20]).
//!
//! This module provides the predictor: a PC-indexed table that learns,
//! after each violation, that a given load must synchronize with older
//! stores. Before the first violation a load is predicted independent and
//! allowed to execute speculatively.

use polyflow_isa::Pc;

/// A PC-indexed dependence predictor with 2-bit confidence.
///
/// `predicts_dependent` starts false for every load; a violation trains
/// the entry to saturate at "dependent". Entries decay when a predicted
/// dependence turns out unnecessary many times in a row, so phase changes
/// do not synchronize forever (the "balancing benefits and risks" of the
/// paper's reference [20]).
#[derive(Debug, Clone)]
pub struct StoreSetPredictor {
    counters: Vec<u8>,
    index_mask: usize,
    violations: u64,
    trainings: u64,
}

impl StoreSetPredictor {
    /// Creates a predictor with `2^index_bits` entries.
    pub fn new(index_bits: usize) -> StoreSetPredictor {
        StoreSetPredictor {
            counters: vec![0; 1 << index_bits],
            index_mask: (1 << index_bits) - 1,
            violations: 0,
            trainings: 0,
        }
    }

    fn index(&self, pc: Pc) -> usize {
        // Simple bit-mix; the table is untagged, so distinct loads may
        // alias (a real SSIT has the same property).
        let x = pc.index();
        (x ^ (x >> 7)) & self.index_mask
    }

    /// Should the load at `pc` synchronize with older-task stores?
    pub fn predicts_dependent(&self, pc: Pc) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Records a dependence violation by the load at `pc`.
    pub fn train_violation(&mut self, pc: Pc) {
        self.violations += 1;
        self.trainings += 1;
        let i = self.index(pc);
        self.counters[i] = 3;
    }

    /// Records that the load at `pc` synchronized but its producer was
    /// already complete (the synchronization was unnecessary).
    pub fn train_unnecessary(&mut self, pc: Pc) {
        let i = self.index(pc);
        self.counters[i] = self.counters[i].saturating_sub(1);
    }

    /// Violations observed so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Total training events.
    pub fn trainings(&self) -> u64 {
        self.trainings
    }
}

/// How the simulator handles inter-task memory dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DependenceMode {
    /// Oracle synchronization: every true inter-task memory dependence is
    /// known (from the trace) and synchronized through the divert queue.
    /// No violations occur. This idealizes the hint cache's 8-byte
    /// dependence entry (§3.1) and is the default for the figures.
    #[default]
    OracleSync,
    /// Store-set prediction: loads predicted independent execute
    /// speculatively; a load that runs ahead of its true producer store
    /// triggers a violation, squashing its task and all younger tasks
    /// (§3.1), and trains the predictor.
    StoreSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_predictor_predicts_independent() {
        let p = StoreSetPredictor::new(10);
        assert!(!p.predicts_dependent(Pc::new(17)));
        assert_eq!(p.violations(), 0);
    }

    #[test]
    fn violation_trains_dependence() {
        let mut p = StoreSetPredictor::new(10);
        p.train_violation(Pc::new(17));
        assert!(p.predicts_dependent(Pc::new(17)));
        assert_eq!(p.violations(), 1);
    }

    #[test]
    fn decay_releases_dependence_after_repeated_unnecessary_syncs() {
        let mut p = StoreSetPredictor::new(10);
        p.train_violation(Pc::new(17));
        p.train_unnecessary(Pc::new(17));
        assert!(p.predicts_dependent(Pc::new(17)), "one decay is not enough");
        p.train_unnecessary(Pc::new(17));
        assert!(!p.predicts_dependent(Pc::new(17)));
    }

    #[test]
    fn untagged_entries_alias() {
        let mut p = StoreSetPredictor::new(4);
        p.train_violation(Pc::new(3));
        // Some other PC mapping to the same entry inherits the prediction.
        let alias = (0..10_000u32)
            .map(Pc::new)
            .find(|&pc| pc != Pc::new(3) && p.predicts_dependent(pc));
        assert!(alias.is_some(), "a 16-entry table must alias");
    }

    #[test]
    fn default_mode_is_oracle() {
        assert_eq!(DependenceMode::default(), DependenceMode::OracleSync);
    }
}
