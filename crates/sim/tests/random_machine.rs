//! Randomized tests: the cycle model must uphold its invariants on
//! arbitrary (bounded, terminating) structured programs under every
//! policy and dependence mode — no deadlocks, full retirement, bounded
//! IPC and task counts, and a coherent spawn log.
//!
//! Programs are generated from a fixed-seed [`SplitMix64`] stream so
//! every run exercises the same cases and failures reproduce exactly.

use polyflow_core::{Policy, ProgramAnalysis};
use polyflow_isa::rng::SplitMix64;
use polyflow_isa::{execute_window, AluOp, Cond, Program, ProgramBuilder, Reg};
use polyflow_sim::{
    simulate, DependenceMode, MachineConfig, NoSpawn, PreparedTrace, ReconvSpawnSource,
    StaticSpawnSource,
};

/// One structured statement of the generated program.
#[derive(Debug, Clone)]
enum Stmt {
    /// `n` ALU instructions (serial on one register).
    Work(u8),
    /// An if-then-else on a data bit, with arm lengths.
    Hammock(u8, u8),
    /// A bounded counted loop around inner work.
    Loop(u8, u8),
    /// A call to the shared leaf function.
    Call,
    /// A load/store pair on a shared location (memory dependence).
    Shared,
}

fn random_stmt(rng: &mut SplitMix64) -> Stmt {
    match rng.below(5) {
        0 => Stmt::Work(1 + rng.below(7) as u8),
        1 => Stmt::Hammock(1 + rng.below(5) as u8, 1 + rng.below(5) as u8),
        2 => Stmt::Loop(1 + rng.below(4) as u8, 1 + rng.below(4) as u8),
        3 => Stmt::Call,
        _ => Stmt::Shared,
    }
}

fn random_stmts(rng: &mut SplitMix64, max_len: usize) -> Vec<Stmt> {
    let len = 1 + rng.index(max_len - 1);
    (0..len).map(|_| random_stmt(rng)).collect()
}

/// Emits the statement list inside a bounded outer loop so spawning has
/// repetition to work with.
fn build_program(stmts: &[Stmt], outer_iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let data = b.alloc_data(&[0xABCD_1234_5678_9EFF]);
    let shared = b.alloc_data(&[1]);
    b.begin_function("main");
    let top = b.fresh_label("outer");
    b.li(Reg::R9, 0);
    b.li(Reg::R20, data as i64);
    b.li(Reg::R21, shared as i64);
    b.bind_label(top);
    b.load(Reg::R11, Reg::R20, 0);
    // Vary the branch material per iteration.
    b.alu(AluOp::Xor, Reg::R11, Reg::R11, Reg::R9);
    for (si, s) in stmts.iter().enumerate() {
        match *s {
            Stmt::Work(n) => {
                for _ in 0..n {
                    b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
                }
            }
            Stmt::Hammock(t, e) => {
                let els = b.fresh_label("els");
                let join = b.fresh_label("join");
                b.alui(AluOp::Srl, Reg::R13, Reg::R11, (si % 48) as i64);
                b.alui(AluOp::And, Reg::R13, Reg::R13, 1);
                b.br_imm(Cond::Eq, Reg::R13, 0, els);
                for _ in 0..t {
                    b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
                }
                b.jmp(join);
                b.bind_label(els);
                for _ in 0..e {
                    b.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
                }
                b.bind_label(join);
            }
            Stmt::Loop(iters, body) => {
                let ltop = b.fresh_label("ltop");
                b.li(Reg::R5, 0);
                b.bind_label(ltop);
                for _ in 0..body {
                    b.alui(AluOp::Add, Reg::R6, Reg::R6, 1);
                }
                b.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
                b.br_imm(Cond::Lt, Reg::R5, iters as i64, ltop);
            }
            Stmt::Call => {
                b.alui(AluOp::Add, Reg::SP, Reg::SP, -8);
                b.store(Reg::RA, Reg::SP, 0);
                b.call("leaf");
                b.load(Reg::RA, Reg::SP, 0);
                b.alui(AluOp::Add, Reg::SP, Reg::SP, 8);
            }
            Stmt::Shared => {
                b.load(Reg::R7, Reg::R21, 0);
                b.alui(AluOp::Mul, Reg::R7, Reg::R7, 3);
                b.store(Reg::R7, Reg::R21, 0);
            }
        }
    }
    b.alui(AluOp::Add, Reg::R9, Reg::R9, 1);
    b.br_imm(Cond::Lt, Reg::R9, outer_iters, top);
    b.halt();
    b.end_function();
    b.begin_function("leaf");
    b.alui(AluOp::Add, Reg::R26, Reg::R26, 1);
    b.alui(AluOp::Mul, Reg::R26, Reg::R26, 5);
    b.ret();
    b.end_function();
    b.build().expect("generated program is valid")
}

#[test]
fn machine_invariants_hold_for_all_policies() {
    let mut rng = SplitMix64::new(0x51f7);
    for case in 0..48 {
        let stmts = random_stmts(&mut rng, 8);
        let outer = rng.range_i64(5, 40);
        let program = build_program(&stmts, outer);
        let exec = execute_window(&program, 200_000).expect("executes");
        assert!(exec.halted, "case {case}: bounded program must halt");
        let analysis = ProgramAnalysis::analyze(&program);

        let ss = MachineConfig::superscalar();
        let prep = PreparedTrace::new(&exec.trace, &ss);
        let base = simulate(&prep, &ss, &mut NoSpawn);
        assert_eq!(base.instructions as usize, exec.trace.len(), "case {case}");
        assert!(base.ipc() <= ss.width as f64, "case {case}");

        let pf = MachineConfig::hpca07();
        let prep = PreparedTrace::new(&exec.trace, &pf);
        for policy in [
            Policy::Loop,
            Policy::Hammock,
            Policy::ProcFt,
            Policy::Postdoms,
        ] {
            let mut src = StaticSpawnSource::new(analysis.spawn_table(policy));
            let r = simulate(&prep, &pf, &mut src);
            assert_eq!(r.instructions, base.instructions, "case {case}");
            assert!(
                r.ipc() <= pf.width as f64,
                "case {case}: {}: IPC {}",
                policy,
                r.ipc()
            );
            assert!(r.max_live_tasks <= pf.max_tasks, "case {case}");
            assert_eq!(r.total_spawns(), r.spawn_log.len() as u64, "case {case}");
            // The spawn log is temporally and spatially coherent.
            for w in r.spawn_log.windows(2) {
                assert!(w[0].cycle <= w[1].cycle, "case {case}");
                assert!(
                    w[0].target_index < w[1].target_index,
                    "case {case}: tail-task spawning splits strictly forward"
                );
            }
            assert_eq!(r.squashes, 0, "case {case}: oracle mode never squashes");
        }
    }
}

#[test]
fn store_set_mode_retires_everything() {
    let mut rng = SplitMix64::new(0x570e);
    for case in 0..24 {
        let stmts = random_stmts(&mut rng, 8);
        let outer = rng.range_i64(5, 30);
        let program = build_program(&stmts, outer);
        let exec = execute_window(&program, 200_000).expect("executes");
        let analysis = ProgramAnalysis::analyze(&program);
        let cfg = MachineConfig {
            memory_dependence: DependenceMode::StoreSet,
            ..MachineConfig::hpca07()
        };
        let prep = PreparedTrace::new(&exec.trace, &cfg);
        let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
        let r = simulate(&prep, &cfg, &mut src);
        assert_eq!(r.instructions as usize, exec.trace.len(), "case {case}");
        assert!(r.ipc() <= cfg.width as f64, "case {case}");
    }
}

#[test]
fn reconvergence_source_upholds_invariants() {
    let mut rng = SplitMix64::new(0x2ec0);
    for case in 0..24 {
        let stmts = random_stmts(&mut rng, 6);
        let outer = rng.range_i64(5, 25);
        let program = build_program(&stmts, outer);
        let exec = execute_window(&program, 200_000).expect("executes");
        let cfg = MachineConfig::hpca07();
        let prep = PreparedTrace::new(&exec.trace, &cfg);
        let mut src = ReconvSpawnSource::new(polyflow_reconv::ReconvConfig::default());
        let r = simulate(&prep, &cfg, &mut src);
        assert_eq!(r.instructions as usize, exec.trace.len(), "case {case}");
        assert!(r.max_live_tasks <= cfg.max_tasks, "case {case}");
    }
}
