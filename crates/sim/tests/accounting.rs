//! Cycle-accounting integration tests: the sum invariant, the
//! counter-vs-bucket cross-checks (the regression net for the stall
//! counter attribution fixes), sink transparency, and event-stream
//! contents.

use polyflow_core::{Policy, ProgramAnalysis};
use polyflow_isa::{execute_window, AluOp, Cond, Program, ProgramBuilder, Reg};
use polyflow_sim::{
    simulate, simulate_traced, timeline, try_simulate_opts, Bucket, JsonlSink, MachineConfig,
    NoSpawn, NullSink, PreparedTrace, RingSink, SimEvent, SimOptions, SimResult, SimScratch,
    StaticSpawnSource,
};

/// A hammock-rich loop with data dependences: exercises spawns,
/// mispredictions, diverts, and (under store-set/hint configs) squashes.
fn hammock_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    let top = b.fresh_label("top");
    let skip = b.fresh_label("skip");
    b.li(Reg::R1, 0);
    b.li(Reg::R10, 99991);
    b.bind_label(top);
    b.li(Reg::R11, 2654435761);
    b.alu(AluOp::Mul, Reg::R10, Reg::R10, Reg::R11);
    b.alui(AluOp::Srl, Reg::R12, Reg::R10, 13);
    b.alui(AluOp::And, Reg::R12, Reg::R12, 1);
    b.br_imm(Cond::Eq, Reg::R12, 0, skip);
    b.alui(AluOp::Add, Reg::R3, Reg::R3, 7);
    b.bind_label(skip);
    b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    b.br_imm(Cond::Lt, Reg::R1, 400, top);
    b.halt();
    b.end_function();
    b.build().unwrap()
}

/// A loop with stores and loads so store-set mode has memory dependences
/// to speculate (and violate) on.
fn memory_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    let top = b.fresh_label("top");
    b.li(Reg::R1, 0);
    b.li(Reg::R5, 4096);
    b.bind_label(top);
    b.alui(AluOp::And, Reg::R6, Reg::R1, 31);
    b.alui(AluOp::Sll, Reg::R6, Reg::R6, 3);
    b.alu(AluOp::Add, Reg::R6, Reg::R5, Reg::R6);
    b.store(Reg::R1, Reg::R6, 0);
    b.load(Reg::R7, Reg::R6, 0);
    b.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R7);
    b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    b.br_imm(Cond::Lt, Reg::R1, 300, top);
    b.halt();
    b.end_function();
    b.build().unwrap()
}

fn run(program: &Program, config: &MachineConfig, policy: Policy) -> SimResult {
    let trace = execute_window(program, 200_000).unwrap().trace;
    let prepared = PreparedTrace::new(&trace, config);
    if policy == Policy::None {
        simulate(&prepared, config, &mut NoSpawn)
    } else {
        let analysis = ProgramAnalysis::analyze(program);
        let mut source = StaticSpawnSource::new(analysis.spawn_table(policy));
        simulate(&prepared, config, &mut source)
    }
}

/// Asserts the ledger balances and each stall counter equals its bucket
/// exactly — the counters and the accountant observe the same per-cycle
/// classification, so any drift means one of them double- or
/// under-counts.
fn assert_consistent(r: &SimResult, config: &MachineConfig) {
    r.account.check().unwrap();
    assert_eq!(r.account.cycles, r.cycles, "account covers every cycle");
    assert_eq!(r.account.contexts, config.contexts());
    assert_eq!(
        r.account.total_slots(),
        r.cycles * config.contexts(),
        "sum(buckets) == cycles × contexts"
    );
    assert_eq!(
        r.fetch_stall_branch_cycles,
        r.account.bucket(Bucket::BranchStall),
        "branch-stall counter vs bucket"
    );
    assert_eq!(
        r.fetch_stall_icache_cycles,
        r.account.bucket(Bucket::IcacheStall),
        "icache-stall counter vs bucket (would fail if squash recovery \
         or spawn setup were still lumped in)"
    );
    assert_eq!(
        r.squash_recovery_cycles,
        r.account.bucket(Bucket::SquashRecovery),
        "squash-recovery counter vs bucket"
    );
    assert_eq!(
        r.spawn_setup_cycles,
        r.account.bucket(Bucket::SpawnSetup),
        "spawn-setup counter vs bucket"
    );
    // One task account per dynamic task: the initial task plus one per
    // spawn.
    assert_eq!(r.account.tasks.len() as u64, 1 + r.total_spawns());
}

#[test]
fn invariant_and_counters_oracle_config() {
    let p = hammock_program();
    let r = run(&p, &MachineConfig::hpca07(), Policy::Postdoms);
    assert!(r.total_spawns() > 0, "workload must exercise spawning");
    assert_consistent(&r, &MachineConfig::hpca07());
    // The postdoms run overlapped fetch stalls, so some branch-stall
    // slots must be on the books.
    assert!(r.account.bucket(Bucket::BranchStall) > 0);
    assert!(r.account.bucket(Bucket::SpawnSetup) > 0);
}

#[test]
fn invariant_and_counters_superscalar_baseline() {
    let p = hammock_program();
    let cfg = MachineConfig::superscalar();
    let r = run(&p, &cfg, Policy::None);
    assert_consistent(&r, &cfg);
    assert_eq!(r.account.contexts, 1);
    assert_eq!(r.account.tasks.len(), 1, "no spawns on the baseline");
    assert_eq!(r.account.bucket(Bucket::IdleContext), 0);
    assert_eq!(r.account.bucket(Bucket::SpawnSetup), 0);
    assert_eq!(r.account.bucket(Bucket::SquashRecovery), 0);
}

#[test]
fn invariant_and_counters_store_set_squashes() {
    let p = memory_program();
    let cfg = MachineConfig {
        memory_dependence: polyflow_sim::DependenceMode::StoreSet,
        ..MachineConfig::hpca07()
    };
    let r = run(&p, &cfg, Policy::Postdoms);
    assert_consistent(&r, &cfg);
    if r.squashes > 0 {
        assert!(
            r.squash_recovery_cycles > 0,
            "squashes must charge recovery cycles"
        );
    }
}

#[test]
fn invariant_and_counters_hint_register_model() {
    let p = hammock_program();
    let cfg = MachineConfig {
        register_dependence: polyflow_sim::DependenceMode::StoreSet,
        ..MachineConfig::hpca07()
    };
    let r = run(&p, &cfg, Policy::Postdoms);
    assert_consistent(&r, &cfg);
}

#[test]
fn invariant_and_counters_rob_reclamation() {
    let p = memory_program();
    let cfg = MachineConfig {
        rob_entries: 64,
        rob_reclamation: true,
        rob_reclaim_after: 16,
        ..MachineConfig::hpca07()
    };
    let r = run(&p, &cfg, Policy::Postdoms);
    assert_consistent(&r, &cfg);
}

#[test]
fn results_are_bit_identical_across_sinks() {
    let p = hammock_program();
    let cfg = MachineConfig::hpca07();
    let trace = execute_window(&p, 200_000).unwrap().trace;
    let prepared = PreparedTrace::new(&trace, &cfg);
    let analysis = ProgramAnalysis::analyze(&p);
    let table = analysis.spawn_table(Policy::Postdoms);

    let mut scratch = SimScratch::default();
    let mut source = StaticSpawnSource::new(table.clone());
    let with_null = simulate_traced(&prepared, &cfg, &mut source, &mut scratch, &mut NullSink);

    let mut ring = RingSink::new(64);
    let mut source = StaticSpawnSource::new(table.clone());
    let with_ring = simulate_traced(&prepared, &cfg, &mut source, &mut scratch, &mut ring);

    let mut jsonl = JsonlSink::new(Vec::new());
    let mut source = StaticSpawnSource::new(table);
    let with_jsonl = simulate_traced(&prepared, &cfg, &mut source, &mut scratch, &mut jsonl);

    // Event emission must never feed back into the simulation.
    assert_eq!(with_null, with_ring);
    assert_eq!(with_null, with_jsonl);
    assert!(ring.total_seen() > 0);
    assert!(jsonl.written() > 0);
}

/// Cycle skipping must be invisible to observers: the JSONL event stream
/// it emits is byte-for-byte the stream of the stepped run, on a workload
/// that actually fast-forwards.
#[test]
fn skipped_cycle_fast_path_emits_identical_events() {
    let p = memory_program();
    let cfg = MachineConfig {
        memory_dependence: polyflow_sim::DependenceMode::StoreSet,
        profitability_feedback: false,
        ..MachineConfig::hpca07()
    };
    let trace = execute_window(&p, 200_000).unwrap().trace;
    let prepared = PreparedTrace::new(&trace, &cfg);
    let analysis = ProgramAnalysis::analyze(&p);
    let table = analysis.spawn_table(Policy::Loop);

    let run = |skip: bool| {
        let mut scratch = SimScratch::default();
        let mut source = StaticSpawnSource::new(table.clone());
        let mut sink = JsonlSink::new(Vec::new());
        let (result, telemetry) = try_simulate_opts(
            &prepared,
            &cfg,
            &mut source,
            &mut scratch,
            &mut sink,
            SimOptions { cycle_skip: skip },
        )
        .unwrap();
        (result, telemetry, sink.into_inner())
    };
    let (on, t_on, bytes_on) = run(true);
    let (off, t_off, bytes_off) = run(false);
    assert!(
        t_on.skipped_cycles > 0,
        "workload never fast-forwarded — parity test is vacuous"
    );
    assert_eq!(t_off.skipped_cycles, 0);
    assert_eq!(on, off, "cycle skipping changed the result");
    assert!(!bytes_on.is_empty());
    assert_eq!(
        bytes_on, bytes_off,
        "cycle skipping changed the emitted event stream"
    );
}

#[test]
fn event_stream_matches_counters() {
    let p = hammock_program();
    let cfg = MachineConfig::hpca07();
    let trace = execute_window(&p, 200_000).unwrap().trace;
    let prepared = PreparedTrace::new(&trace, &cfg);
    let analysis = ProgramAnalysis::analyze(&p);
    let mut source = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
    let mut scratch = SimScratch::default();
    // Unbounded ring: retain the full stream.
    let mut ring = RingSink::new(usize::MAX);
    let r = simulate_traced(&prepared, &cfg, &mut source, &mut scratch, &mut ring);

    let mut spawns = 0u64;
    let mut squashes = 0u64;
    let mut reclaims = 0u64;
    let mut retired = 0u64;
    let mut last_cycle = 0u64;
    for ev in ring.events() {
        assert!(ev.cycle() >= last_cycle, "events ordered by cycle");
        last_cycle = ev.cycle();
        match *ev {
            SimEvent::Spawn {
                task, target_index, ..
            } => {
                let acct = &r.account.tasks[task as usize];
                assert_eq!(acct.start_index, target_index);
                spawns += 1;
            }
            SimEvent::Squash { reclaim, .. } => {
                if reclaim {
                    reclaims += 1;
                } else {
                    squashes += 1;
                }
            }
            SimEvent::RetireBatch { count, .. } => retired += count as u64,
            _ => {}
        }
    }
    assert_eq!(spawns, r.total_spawns());
    assert_eq!(squashes, r.squashes);
    assert_eq!(reclaims, r.rob_reclaims);
    assert_eq!(retired, r.instructions, "every instruction retires once");

    // Spawn events mirror the spawn log one-for-one.
    let spawn_events: Vec<_> = ring
        .events()
        .filter_map(|ev| match *ev {
            SimEvent::Spawn {
                cycle,
                target_index,
                ..
            } => Some((cycle, target_index)),
            _ => None,
        })
        .collect();
    let log: Vec<_> = r
        .spawn_log
        .iter()
        .map(|s| (s.cycle, s.target_index))
        .collect();
    assert_eq!(spawn_events, log);
}

#[test]
fn stall_episodes_are_balanced_and_typed() {
    let p = hammock_program();
    let cfg = MachineConfig::hpca07();
    let trace = execute_window(&p, 200_000).unwrap().trace;
    let prepared = PreparedTrace::new(&trace, &cfg);
    let analysis = ProgramAnalysis::analyze(&p);
    let mut source = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
    let mut scratch = SimScratch::default();
    let mut ring = RingSink::new(usize::MAX);
    let r = simulate_traced(&prepared, &cfg, &mut source, &mut scratch, &mut ring);

    // Per task, StallBegin/StallEnd must alternate begin-first, and every
    // episode's bucket must be a stall bucket with charged slots.
    let mut open: std::collections::HashMap<u32, Bucket> = std::collections::HashMap::new();
    let mut begins = 0u64;
    for ev in ring.events() {
        match *ev {
            SimEvent::StallBegin { task, bucket, .. } => {
                assert!(bucket.is_stall());
                assert!(
                    open.insert(task, bucket).is_none(),
                    "task {task} began a stall inside a stall"
                );
                begins += 1;
            }
            SimEvent::StallEnd { task, bucket, .. } => {
                assert_eq!(
                    open.remove(&task),
                    Some(bucket),
                    "task {task} ended a stall it never began"
                );
            }
            _ => {}
        }
    }
    assert!(begins > 0, "a postdoms run must have stall episodes");
    // Any still-open episodes simply ran to the end of the simulation.
    for (task, bucket) in open {
        assert!(r.account.tasks[task as usize].buckets[bucket.index()] > 0);
    }
}

#[test]
fn spawn_log_cycles_nondecreasing_and_summary_renders() {
    let p = hammock_program();
    let r = run(&p, &MachineConfig::hpca07(), Policy::Postdoms);
    assert!(!r.spawn_log.is_empty());
    assert!(
        r.spawn_log.windows(2).all(|w| w[0].cycle <= w[1].cycle),
        "spawn log must be nondecreasing in cycle"
    );
    // Spawn cycles recorded in the account agree with the log.
    for (s, t) in r.spawn_log.iter().zip(r.account.tasks.iter().skip(1)) {
        assert_eq!(s.cycle, t.spawn_cycle);
        assert_eq!(s.target_index, t.start_index);
        assert_eq!(Some(s.kind), t.kind);
        assert_eq!(Some(s.trigger), t.created_by);
    }
    let s = timeline::summary(&r);
    assert!(s.contains(&format!("{} spawns", r.total_spawns())));
    assert!(s.contains("first spawn at cycle"));
    assert!(s.contains(&format!("(of {})", r.cycles)));
}

#[test]
fn sim_result_json_is_well_formed_and_balanced() {
    let p = hammock_program();
    let cfg = MachineConfig::hpca07();
    let r = run(&p, &cfg, Policy::Postdoms);
    let json = r.to_json();
    // Structurally balanced (no serde available to parse, so check the
    // shape by hand; CI additionally runs `jq` over the explain output).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains(&format!("\"cycles\": {}", r.cycles)));
    assert!(json.contains(&format!("\"contexts\": {}", cfg.contexts())));
    for b in Bucket::ALL {
        assert!(json.contains(&format!("\"{}\":", b.label())), "{b}");
    }
    assert!(json.contains("\"squash_recovery_cycles\""));
    assert!(json.contains("\"spawn_setup_cycles\""));
    // One task object per dynamic task.
    assert_eq!(
        json.matches("\"uid\":").count() as u64,
        1 + r.total_spawns()
    );
}

#[test]
fn empty_trace_yields_balanced_default_account() {
    let r = SimResult::default();
    r.account.check().unwrap();
    assert_eq!(r.account.total_slots(), 0);
}
