//! Reaching definitions and the use-of-undefined-register check.
//!
//! The domain has one bit per *definition site* plus one pseudo-definition
//! per register modeling the machine state at function entry. A use is
//! "undefined" when **no** definition of its register reaches it — a
//! must-undefined criterion, so every report is a genuine
//! reads-garbage-on-all-paths bug rather than a maybe.

use crate::bitset::BitSet;
use crate::solver::{solve, Direction, GenKill, Solution};
use polyflow_cfg::{BlockId, Cfg};
use polyflow_isa::{Pc, Program, Reg};

/// Which registers count as defined when a function is entered.
///
/// The choice is a *policy*, because it encodes an assumption about the
/// caller (or the machine) rather than a program fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryDefs {
    /// Every register is defined at entry. This matches the interpreter,
    /// which zero-initializes the whole register file (and sets `sp`), and
    /// is always correct for non-entry functions, whose callers arrive
    /// with a fully materialized register state.
    All,
    /// Only `r0` (hardwired zero) and `sp` (set by the machine before the
    /// first instruction) are defined. Strict mode flags reads of any
    /// other register before a write — useful as a lint on the entry
    /// function, where "reads the zeroed register file" usually means
    /// "forgot to initialize".
    Strict,
}

/// A definition site: instruction `pc` writes register `reg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// The defining instruction.
    pub pc: Pc,
    /// The register it writes.
    pub reg: Reg,
}

/// A read of a register no definition reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndefinedUse {
    /// The reading instruction.
    pub pc: Pc,
    /// The register read before any write.
    pub reg: Reg,
}

/// Poses one function's reaching definitions as an owned problem plus
/// its definition-site table — exactly what
/// [`ReachingDefs::compute_with`] solves. Public through
/// [`crate::oracle::function_reaching_problem`] so the differential
/// tests cover the forward direction on every workload function.
pub(crate) fn function_reaching_problem(
    program: &Program,
    cfg: &Cfg,
    entry: EntryDefs,
) -> (crate::oracle::OwnedProblem, Vec<DefSite>) {
    let func = cfg.function();
    let mut defs = Vec::new();
    let func_start = func.range.start as usize;
    let mut def_index_at = vec![usize::MAX; func.range.end as usize - func_start];
    for i in func_start..func.range.end as usize {
        if let Some(reg) = program.inst(Pc::new(i as u32)).dst() {
            def_index_at[i - func_start] = defs.len();
            defs.push(DefSite {
                pc: Pc::new(i as u32),
                reg,
            });
        }
    }
    let domain = Reg::COUNT + defs.len();
    // All definition indices of each register, pseudo-def included.
    let mut defs_of_reg: Vec<BitSet> = (0..Reg::COUNT).map(|r| BitSet::of(domain, &[r])).collect();
    for (i, d) in defs.iter().enumerate() {
        defs_of_reg[d.reg.index()].insert(Reg::COUNT + i);
    }

    let n = cfg.len();
    let mut transfer = Vec::with_capacity(n);
    for block in cfg.blocks() {
        let mut t = GenKill::identity(domain);
        for i in block.start.index()..block.end.index() {
            if let Some(reg) = program.inst(Pc::new(i as u32)).dst() {
                let di = Reg::COUNT + def_index_at[i - func_start];
                t.kill.union_with(&defs_of_reg[reg.index()]);
                t.gen.subtract(&defs_of_reg[reg.index()]);
                t.gen.insert(di);
                t.kill.remove(di);
            }
        }
        transfer.push(t);
    }
    let succs: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            cfg.succs(BlockId::from_index(i))
                .iter()
                .map(|&(t, _)| t.index())
                .collect()
        })
        .collect();
    let entry_defined: u32 = match entry {
        EntryDefs::All => u32::MAX,
        EntryDefs::Strict => (1 << Reg::R0.index()) | (1 << Reg::SP.index()),
    };
    let mut boundary_value = BitSet::new(domain);
    for r in 0..Reg::COUNT {
        if entry_defined & (1 << r) != 0 {
            boundary_value.insert(r);
        }
    }
    let problem = crate::oracle::OwnedProblem {
        direction: Direction::Forward,
        domain,
        transfer,
        succs,
        boundary_nodes: vec![cfg.entry().index()],
        boundary_value,
    };
    (problem, defs)
}

/// Reaching definitions for one [`Cfg`].
///
/// Domain layout: indices `0..32` are the per-register entry
/// pseudo-definitions; `32..` are the real [`DefSite`]s in program order.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    defs: Vec<DefSite>,
    reach_in: Vec<BitSet>,
    reach_out: Vec<BitSet>,
}

impl ReachingDefs {
    /// Solves reaching definitions over `cfg` with the [`EntryDefs::All`]
    /// policy (the machine-honest default).
    pub fn compute(program: &Program, cfg: &Cfg) -> ReachingDefs {
        ReachingDefs::compute_with(program, cfg, EntryDefs::All)
    }

    /// Solves reaching definitions under an explicit entry policy.
    pub fn compute_with(program: &Program, cfg: &Cfg, entry: EntryDefs) -> ReachingDefs {
        let (p, defs) = function_reaching_problem(program, cfg, entry);
        let Solution { entry, exit } = solve(&p.as_problem());
        ReachingDefs {
            defs,
            reach_in: entry,
            reach_out: exit,
        }
    }

    /// The real definition sites of this function, in program order.
    /// Domain index `32 + i` corresponds to `def_sites()[i]`.
    pub fn def_sites(&self) -> &[DefSite] {
        &self.defs
    }

    /// Definitions reaching the start of `b`.
    pub fn reach_in(&self, b: BlockId) -> &BitSet {
        &self.reach_in[b.index()]
    }

    /// Definitions reaching the end of `b`.
    pub fn reach_out(&self, b: BlockId) -> &BitSet {
        &self.reach_out[b.index()]
    }

    /// True if some definition of `reg` (pseudo-defs included) reaches the
    /// start of `b`.
    pub fn reg_defined_at_entry(&self, b: BlockId, reg: Reg) -> bool {
        let set = &self.reach_in[b.index()];
        if set.contains(reg.index()) {
            return true;
        }
        self.defs
            .iter()
            .enumerate()
            .any(|(i, d)| d.reg == reg && set.contains(Reg::COUNT + i))
    }

    /// Scans every reachable block for reads of registers that no
    /// definition reaches. `r0` reads are never reported.
    pub fn undefined_uses(
        &self,
        program: &Program,
        cfg: &Cfg,
        reachable: &[bool],
    ) -> Vec<UndefinedUse> {
        let mut out = Vec::new();
        for block in cfg.blocks() {
            if !reachable[block.id.index()] {
                continue;
            }
            // Registers with at least one reaching definition, updated as
            // we walk the block.
            let mut defined: u32 = 0;
            for r in 0..Reg::COUNT {
                if self.reg_defined_at_entry(block.id, Reg::from_index(r)) {
                    defined |= 1 << r;
                }
            }
            for i in block.start.index()..block.end.index() {
                let inst = program.inst(Pc::new(i as u32));
                for src in inst.srcs().into_iter().flatten() {
                    if src != Reg::R0 && defined & (1 << src.index()) == 0 {
                        out.push(UndefinedUse {
                            pc: Pc::new(i as u32),
                            reg: src,
                        });
                        defined |= 1 << src.index(); // report each reg once per block
                    }
                }
                if let Some(d) = inst.dst() {
                    defined |= 1 << d.index();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{AluOp, Cond, ProgramBuilder};

    /// main: r1 = r2 + 1 (r2 read before any write); r3 = 5; if r1 < r3
    /// then r4 = 1 else (r4 undefined on this path); r5 = r4; halt
    fn program_with_partial_def() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let then = b.fresh_label("then");
        let join = b.fresh_label("join");
        b.alui(AluOp::Add, Reg::R1, Reg::R2, 1); // 0: reads r2
        b.li(Reg::R3, 5); // 1
        b.br(Cond::Lt, Reg::R1, Reg::R3, then); // 2
        b.jmp(join); // 3: else arm, r4 not written
        b.bind_label(then);
        b.li(Reg::R4, 1); // 4
        b.jmp(join); // 5
        b.bind_label(join);
        b.alu(AluOp::Add, Reg::R5, Reg::R4, Reg::R0); // 6: reads r4
        b.halt(); // 7
        b.end_function();
        b.build().unwrap()
    }

    fn all_reachable(cfg: &Cfg) -> Vec<bool> {
        vec![true; cfg.len()]
    }

    #[test]
    fn all_policy_reports_nothing() {
        let p = program_with_partial_def();
        let cfg = Cfg::build(&p, p.function("main").unwrap());
        let rd = ReachingDefs::compute(&p, &cfg);
        assert!(rd.undefined_uses(&p, &cfg, &all_reachable(&cfg)).is_empty());
    }

    #[test]
    fn strict_policy_flags_read_before_write_but_not_may_defs() {
        let p = program_with_partial_def();
        let cfg = Cfg::build(&p, p.function("main").unwrap());
        let rd = ReachingDefs::compute_with(&p, &cfg, EntryDefs::Strict);
        let uses = rd.undefined_uses(&p, &cfg, &all_reachable(&cfg));
        // r2 at pc 0 is read before ANY definition — flagged.
        assert!(uses.contains(&UndefinedUse {
            pc: Pc::new(0),
            reg: Reg::R2
        }));
        // r4 at pc 6 has a reaching definition on the then-path, so the
        // must-undefined criterion does NOT flag it.
        assert!(!uses.iter().any(|u| u.reg == Reg::R4));
    }

    #[test]
    fn kills_are_per_register() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.li(Reg::R1, 1); // 0: def A of r1
        b.li(Reg::R1, 2); // 1: def B of r1 kills A
        b.li(Reg::R2, 3); // 2: def of r2
        b.halt(); // 3
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("main").unwrap());
        let rd = ReachingDefs::compute(&p, &cfg);
        assert_eq!(rd.def_sites().len(), 3);
        let exit_block = cfg.exits()[0];
        let out = rd.reach_out(exit_block);
        // Def A (index 32) killed; B (33) and the r2 def (34) reach the end.
        assert!(!out.contains(Reg::COUNT));
        assert!(out.contains(Reg::COUNT + 1));
        assert!(out.contains(Reg::COUNT + 2));
        // r1/r2 pseudo-defs killed, untouched registers' pseudo-defs remain.
        assert!(!out.contains(Reg::R1.index()));
        assert!(!out.contains(Reg::R2.index()));
        assert!(out.contains(Reg::R7.index()));
    }

    #[test]
    fn loop_carried_defs_reach_the_header() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0); // 0
        b.bind_label(top);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1); // 1: loop def
        b.br_imm(Cond::Lt, Reg::R1, 10, top); // 2,3
        b.halt(); // 4
        b.end_function();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p, p.function("main").unwrap());
        let rd = ReachingDefs::compute(&p, &cfg);
        let header = cfg.block_at(Pc::new(1)).unwrap();
        // Both the init (pc 0) and the loop def (pc 1) reach the header.
        let defs: Vec<Pc> = rd
            .reach_in(header)
            .iter()
            .filter(|&i| i >= Reg::COUNT)
            .map(|i| rd.def_sites()[i - Reg::COUNT].pc)
            .filter(|pc| {
                rd.def_sites()
                    .iter()
                    .any(|d| d.pc == *pc && d.reg == Reg::R1)
            })
            .collect();
        assert!(defs.contains(&Pc::new(0)) && defs.contains(&Pc::new(1)));
    }
}
