//! The SCC-parallel gen/kill solver.
//!
//! [`solve_parallel`] computes the same fixpoint as [`solve`] by
//! decomposing the propagation graph into its condensation DAG
//! ([`crate::scc`]) and solving components in dependency order:
//! acyclic components are a single transfer application, cyclic ones a
//! local worklist fixpoint over their internal edges. Independent
//! components run concurrently on [`polyflow_pool::StealDeque`]s —
//! per-worker deques, dependency counters, and a ready queue, the same
//! scheduling fabric the sweep harness uses.
//!
//! # Why the result is bit-identical to [`solve`]
//!
//! Union-meet gen/kill transfer functions are monotone over a finite
//! lattice, so the problem has a unique **least** fixpoint, and every
//! fair iteration strategy that starts from ⊥ (plus the boundary value)
//! converges to it. Under the topological order of the condensation the
//! global equation system is block-triangular: once every predecessor
//! component's transfer outputs are final, the local least fixpoint of a
//! component equals the restriction of the global least fixpoint to that
//! component. [`BitSet`] is a canonical representation (a fixed word
//! vector per domain), so value equality is byte equality: the parallel
//! schedule — worker count, steal order, interleaving — cannot show
//! through. The oracle harness ([`crate::oracle`]) enforces this
//! promise differentially.

use crate::bitset::BitSet;
use crate::scc::{condense, Condensation};
use crate::solver::{assemble, propagation_graph, GenKill, Problem, Solution};
use polyflow_pool::StealDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything a worker needs to solve one component.
struct Ctx<'p> {
    problem: &'p Problem<'p>,
    flow_in: Vec<Vec<usize>>,
    flow_out: Vec<Vec<usize>>,
    is_boundary: Vec<bool>,
    cond: Condensation,
}

/// Finalized per-node (meet, transfer output), written exactly once when
/// the node's component is solved, read by successor components.
type Slot = Mutex<Option<(BitSet, BitSet)>>;

/// Runs the worklist fixpoint SCC-by-SCC over the condensation DAG,
/// using up to `jobs` worker threads. `jobs <= 1` solves sequentially in
/// topological order with no threads spawned. The returned [`Solution`]
/// is bit-identical to [`solve`] on the same problem.
///
/// # Panics
///
/// Panics on the same malformed inputs as [`solve`] (node-count
/// mismatch, out-of-range edge, boundary domain mismatch).
pub fn solve_parallel(p: &Problem<'_>, jobs: usize) -> Solution {
    let n = p.transfer.len();
    let (flow_in, flow_out) = propagation_graph(p);
    let cond = condense(&flow_out);
    let mut is_boundary = vec![false; n];
    for &b in p.boundary_nodes {
        is_boundary[b] = true;
    }
    let ctx = Ctx {
        problem: p,
        flow_in,
        flow_out,
        is_boundary,
        cond,
    };
    let slots: Vec<Slot> = (0..n).map(|_| Mutex::new(None)).collect();
    let k = ctx.cond.len();
    let jobs = jobs.clamp(1, k.max(1));

    if jobs <= 1 {
        // Ascending component ids are a topological order (scc.rs), so a
        // plain loop respects every dependency.
        for s in 0..k {
            process_component(&ctx, s, &slots);
        }
    } else {
        run_dag(&ctx, &slots, jobs);
    }

    let mut meet = Vec::with_capacity(n);
    let mut trans = Vec::with_capacity(n);
    for slot in slots {
        let (m, t) = slot.into_inner().unwrap().expect("every node solved");
        meet.push(m);
        trans.push(t);
    }
    assemble(p.direction, meet, trans)
}

/// Schedules components over per-worker steal deques: a component
/// becomes ready when its last unfinished predecessor completes
/// (dependency counters), ready work is pushed to the finishing worker's
/// own deque (locality), and idle workers steal FIFO from the others.
fn run_dag(ctx: &Ctx<'_>, slots: &[Slot], jobs: usize) {
    let k = ctx.cond.len();
    let deps: Vec<AtomicUsize> = ctx
        .cond
        .pred_count
        .iter()
        .map(|&c| AtomicUsize::new(c))
        .collect();
    let queues: Vec<StealDeque<usize>> = (0..jobs).map(|_| StealDeque::new()).collect();
    let mut roots = 0usize;
    for s in 0..k {
        if ctx.cond.pred_count[s] == 0 {
            queues[roots % jobs].push(s);
            roots += 1;
        }
    }
    let completed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let queues = &queues;
            let deps = &deps;
            let completed = &completed;
            scope.spawn(move || loop {
                let next = queues[w]
                    .pop()
                    .or_else(|| (1..jobs).find_map(|d| queues[(w + d) % jobs].steal()));
                match next {
                    Some(s) => {
                        process_component(ctx, s, slots);
                        for &t in &ctx.cond.succs[s] {
                            // The last predecessor to finish owns the
                            // hand-off; the slot mutexes carry the data
                            // dependency.
                            if deps[t].fetch_sub(1, Ordering::AcqRel) == 1 {
                                queues[w].push(t);
                            }
                        }
                        completed.fetch_add(1, Ordering::AcqRel);
                    }
                    None => {
                        if completed.load(Ordering::Acquire) == k {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
}

/// Solves component `s`: seeds each member's meet from the boundary value
/// and the finalized outputs of external predecessors, then either
/// applies the transfer once (acyclic component) or iterates the internal
/// edges to a local fixpoint. Writes the finalized (meet, trans) pairs
/// into `slots`.
fn process_component(ctx: &Ctx<'_>, s: usize, slots: &[Slot]) {
    let p = ctx.problem;
    let members = &ctx.cond.members[s];
    let mut meet: Vec<BitSet> = members
        .iter()
        .map(|&v| {
            let mut m = if ctx.is_boundary[v] {
                p.boundary_value.clone()
            } else {
                BitSet::new(p.domain)
            };
            for &u in &ctx.flow_in[v] {
                if ctx.cond.scc_of[u] != s {
                    let slot = slots[u].lock().unwrap();
                    let (_, t) = slot.as_ref().expect("predecessor component finalized");
                    m.union_with(t);
                }
            }
            m
        })
        .collect();

    let mut trans: Vec<BitSet> = vec![BitSet::new(p.domain); members.len()];
    if !ctx.cond.cyclic[s] {
        // Trivial component: exactly one node, no internal edge — one
        // transfer application is the fixpoint.
        debug_assert_eq!(members.len(), 1);
        apply_into(&p.transfer[members[0]], &meet[0], &mut trans[0]);
    } else {
        local_fixpoint(ctx, s, members, &mut meet, &mut trans);
    }

    for (li, &v) in members.iter().enumerate() {
        let mut slot = slots[v].lock().unwrap();
        debug_assert!(slot.is_none(), "component solved twice");
        *slot = Some((
            std::mem::replace(&mut meet[li], BitSet::new(0)),
            std::mem::replace(&mut trans[li], BitSet::new(0)),
        ));
    }
}

/// Worklist iteration restricted to one cyclic component. External
/// inputs are already folded into `meet`; only internal edges propagate.
fn local_fixpoint(
    ctx: &Ctx<'_>,
    s: usize,
    members: &[usize],
    meet: &mut [BitSet],
    trans: &mut [BitSet],
) {
    let p = ctx.problem;
    // Local index of each member (members is ascending, so binary search).
    let local = |v: usize| members.binary_search(&v).expect("member of this component");
    // Internal dependents of each member, as local indices.
    let dependents: Vec<Vec<usize>> = members
        .iter()
        .map(|&v| {
            ctx.flow_out[v]
                .iter()
                .filter(|&&d| ctx.cond.scc_of[d] == s)
                .map(|&d| local(d))
                .collect()
        })
        .collect();

    // Seed every member once, in the same program-order heuristic the
    // sequential solver uses (reverse for backward problems). The order
    // affects only convergence speed, never the fixpoint reached.
    let m = members.len();
    let mut on_list = vec![true; m];
    let mut worklist: std::collections::VecDeque<usize> = match p.direction {
        crate::solver::Direction::Forward => (0..m).collect(),
        crate::solver::Direction::Backward => (0..m).rev().collect(),
    };
    let mut scratch = BitSet::new(p.domain);
    while let Some(li) = worklist.pop_front() {
        on_list[li] = false;
        let t = &p.transfer[members[li]];
        // trans[li] = gen ∪ (meet ∖ kill), via the allocation-free
        // bitset fast paths.
        scratch.copy_from(&meet[li]);
        scratch.subtract(&t.kill);
        t.gen.union_with_into(&scratch, &mut trans[li]);
        for &dj in &dependents[li] {
            // Read-only subset probe first: near the fixpoint most
            // propagations change nothing.
            if !trans[li].is_subset_of(&meet[dj]) {
                meet[dj].union_with(&trans[li]);
                if !on_list[dj] {
                    on_list[dj] = true;
                    worklist.push_back(dj);
                }
            }
        }
    }
}

/// `out = gen ∪ (input ∖ kill)` without allocating.
fn apply_into(t: &GenKill, input: &BitSet, out: &mut BitSet) {
    out.copy_from(input);
    out.subtract(&t.kill);
    out.union_with(&t.gen);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, Direction};

    fn diamond_problem() -> (Vec<GenKill>, Vec<Vec<usize>>) {
        let domain = 2;
        let mut t = vec![
            GenKill::identity(domain),
            GenKill::identity(domain),
            GenKill::identity(domain),
            GenKill::identity(domain),
        ];
        t[0].gen.insert(0);
        t[1].gen.insert(1);
        t[2].kill.insert(0);
        (t, vec![vec![1, 2], vec![3], vec![3], vec![]])
    }

    #[test]
    fn matches_sequential_on_diamond_both_directions() {
        let (t, succs) = diamond_problem();
        for direction in [Direction::Forward, Direction::Backward] {
            let boundary = match direction {
                Direction::Forward => vec![0],
                Direction::Backward => vec![3],
            };
            let p = Problem {
                direction,
                domain: 2,
                transfer: &t,
                succs: &succs,
                boundary_nodes: &boundary,
                boundary_value: BitSet::of(2, &[1]),
            };
            let oracle = solve(&p);
            for jobs in [1, 2, 4] {
                assert_eq!(solve_parallel(&p, jobs), oracle, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn zero_node_problem() {
        let p = Problem {
            direction: Direction::Forward,
            domain: 4,
            transfer: &[],
            succs: &[],
            boundary_nodes: &[],
            boundary_value: BitSet::new(4),
        };
        for jobs in [1, 4] {
            let sol = solve_parallel(&p, jobs);
            assert!(sol.entry.is_empty() && sol.exit.is_empty());
        }
    }

    #[test]
    fn self_loop_fixpoint() {
        // One node feeding itself: gen survives the loop, kill removes
        // the boundary fact.
        let domain = 2;
        let mut t = vec![GenKill::identity(domain)];
        t[0].gen.insert(0);
        t[0].kill.insert(1);
        let succs = vec![vec![0]];
        let p = Problem {
            direction: Direction::Forward,
            domain,
            transfer: &t,
            succs: &succs,
            boundary_nodes: &[0],
            boundary_value: BitSet::of(domain, &[1]),
        };
        let oracle = solve(&p);
        for jobs in [1, 4] {
            assert_eq!(solve_parallel(&p, jobs), oracle, "jobs={jobs}");
        }
        assert!(oracle.entry[0].contains(0), "own gen circulates");
        assert!(oracle.entry[0].contains(1), "boundary joins the meet");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_malformed_edges_like_solve() {
        let t = vec![GenKill::identity(1)];
        let succs = vec![vec![7]];
        let p = Problem {
            direction: Direction::Forward,
            domain: 1,
            transfer: &t,
            succs: &succs,
            boundary_nodes: &[0],
            boundary_value: BitSet::new(1),
        };
        solve_parallel(&p, 2);
    }
}
