//! Tarjan SCC decomposition and the condensation DAG.
//!
//! The parallel solver ([`crate::parallel`]) decomposes a problem's
//! propagation graph into strongly connected components: within an SCC,
//! dataflow values circulate and a local fixpoint iteration is needed;
//! between SCCs the condensation is acyclic, so components can be solved
//! once each, in dependency order — and independent components in
//! parallel.
//!
//! Determinism: Tarjan's algorithm visits roots in ascending node order
//! and children in successor-list order, so the decomposition is a pure
//! function of the input graph. Component ids are renumbered so that
//! **ascending id order is a topological order** of the condensation
//! (every edge goes from a lower id to a higher id), which makes the
//! sequential fallback a simple `for s in 0..k` loop and gives the
//! scheduler a canonical ready order.

/// The condensation of a directed graph: its SCCs and the DAG they form.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Component id of each node. Ids are topologically ordered: for
    /// every edge `u -> v` with `scc_of[u] != scc_of[v]`,
    /// `scc_of[u] < scc_of[v]`.
    pub scc_of: Vec<usize>,
    /// Member nodes of each component, ascending.
    pub members: Vec<Vec<usize>>,
    /// Condensation edges (successor component ids, sorted, deduped;
    /// never contains the component itself).
    pub succs: Vec<Vec<usize>>,
    /// In-degree of each component in the condensation (number of
    /// distinct predecessor components).
    pub pred_count: Vec<usize>,
    /// True for components that contain a cycle: more than one member,
    /// or a single member with a self-edge. Trivial (acyclic) components
    /// need one transfer application; cyclic ones need a local fixpoint.
    pub cyclic: Vec<bool>,
}

impl Condensation {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Decomposes the graph given by per-node successor lists.
///
/// Runs Tarjan's algorithm with an explicit stack (deep chains — tens of
/// thousands of nodes in fuzzed supergraphs — must not overflow the call
/// stack).
///
/// # Panics
///
/// Panics if an edge names a node out of range.
pub fn condense(succs: &[Vec<usize>]) -> Condensation {
    let n = succs.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    // Components in Tarjan pop order (reverse topological); relabelled
    // below so ascending ids are topological.
    let mut scc_pop = vec![UNVISITED; n];
    let mut members_pop: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;
    // (node, next child offset) frames of the explicit DFS.
    let mut call: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        call.push((root, 0));
        while let Some(frame) = call.last_mut() {
            let v = frame.0;
            if frame.1 < succs[v].len() {
                let w = succs[v][frame.1];
                frame.1 += 1;
                assert!(w < n, "edge {v}->{w} out of range");
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        scc_pop[w] = members_pop.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    members_pop.push(comp);
                }
            }
        }
    }

    // A component pops only after every component it reaches has popped,
    // so pop order is reverse topological; flip it.
    let k = members_pop.len();
    let scc_of: Vec<usize> = scc_pop.into_iter().map(|raw| k - 1 - raw).collect();
    let mut members = members_pop;
    members.reverse();

    let mut cond_succs: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut cyclic = vec![false; k];
    for (s, m) in members.iter().enumerate() {
        cyclic[s] = m.len() > 1;
    }
    for (u, ss) in succs.iter().enumerate() {
        let su = scc_of[u];
        for &v in ss {
            let sv = scc_of[v];
            if su == sv {
                cyclic[su] = true; // intra-component edge (incl. self-loop)
            } else {
                debug_assert!(su < sv, "ids must be topologically ordered");
                cond_succs[su].push(sv);
            }
        }
    }
    let mut pred_count = vec![0usize; k];
    for cs in &mut cond_succs {
        cs.sort_unstable();
        cs.dedup();
        for &t in cs.iter() {
            pred_count[t] += 1;
        }
    }

    Condensation {
        scc_of,
        members,
        succs: cond_succs,
        pred_count,
        cyclic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every member list is ascending, ids partition the nodes, and the
    /// edge/topological invariants hold.
    fn check_invariants(succs: &[Vec<usize>], c: &Condensation) {
        let mut seen = vec![false; succs.len()];
        for (s, m) in c.members.iter().enumerate() {
            assert!(m.windows(2).all(|w| w[0] < w[1]), "members ascending");
            for &v in m {
                assert_eq!(c.scc_of[v], s);
                assert!(!seen[v], "node {v} in two components");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every node in a component");
        for (u, ss) in succs.iter().enumerate() {
            for &v in ss {
                if c.scc_of[u] != c.scc_of[v] {
                    assert!(c.scc_of[u] < c.scc_of[v], "topological ids");
                    assert!(c.succs[c.scc_of[u]].contains(&c.scc_of[v]));
                }
            }
        }
        let mut preds = vec![0usize; c.len()];
        for cs in &c.succs {
            assert!(cs.windows(2).all(|w| w[0] < w[1]), "sorted deduped");
            for &t in cs {
                preds[t] += 1;
            }
        }
        assert_eq!(preds, c.pred_count);
    }

    #[test]
    fn empty_graph() {
        let c = condense(&[]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn chain_is_all_trivial() {
        let succs = vec![vec![1], vec![2], vec![3], vec![]];
        let c = condense(&succs);
        check_invariants(&succs, &c);
        assert_eq!(c.len(), 4);
        assert!(c.cyclic.iter().all(|&b| !b));
        // Topological ids follow the chain.
        assert_eq!(c.scc_of, vec![0, 1, 2, 3]);
        assert_eq!(c.pred_count, vec![0, 1, 1, 1]);
    }

    #[test]
    fn self_loop_is_cyclic_but_singleton() {
        let succs = vec![vec![0, 1], vec![]];
        let c = condense(&succs);
        check_invariants(&succs, &c);
        assert_eq!(c.len(), 2);
        assert!(c.cyclic[c.scc_of[0]], "self-loop needs a local fixpoint");
        assert!(!c.cyclic[c.scc_of[1]]);
    }

    #[test]
    fn loop_collapses_to_one_component() {
        // 0 -> 1 <-> 2, 2 -> 3
        let succs = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let c = condense(&succs);
        check_invariants(&succs, &c);
        assert_eq!(c.len(), 3);
        assert_eq!(c.scc_of[1], c.scc_of[2]);
        assert!(c.cyclic[c.scc_of[1]]);
        assert_eq!(c.members[c.scc_of[1]], vec![1, 2]);
        assert!(c.scc_of[0] < c.scc_of[1] && c.scc_of[1] < c.scc_of[3]);
    }

    #[test]
    fn irreducible_two_entry_loop() {
        // 0 branches to both entries of the 1 <-> 2 loop.
        let succs = vec![vec![1, 2], vec![2, 3], vec![1], vec![]];
        let c = condense(&succs);
        check_invariants(&succs, &c);
        assert_eq!(c.scc_of[1], c.scc_of[2]);
        assert_ne!(c.scc_of[0], c.scc_of[1]);
    }

    #[test]
    fn giant_ring_is_one_component() {
        let n = 1000;
        let succs: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1) % n]).collect();
        let c = condense(&succs);
        check_invariants(&succs, &c);
        assert_eq!(c.len(), 1);
        assert!(c.cyclic[0]);
        assert_eq!(c.members[0].len(), n);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let n = 200_000;
        let succs: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let c = condense(&succs);
        assert_eq!(c.len(), n);
    }

    #[test]
    fn disconnected_components_and_wide_dag() {
        // Two roots fanning into a shared sink, plus an isolated node.
        let succs = vec![vec![2], vec![2], vec![], vec![]];
        let c = condense(&succs);
        check_invariants(&succs, &c);
        assert_eq!(c.len(), 4);
        assert_eq!(c.pred_count[c.scc_of[2]], 2);
        assert_eq!(c.pred_count[c.scc_of[3]], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        condense(&[vec![5]]);
    }
}
