//! Bitset worklist dataflow analyses over PolyFlow CFGs.
//!
//! This crate supplies the static-analysis substrate beneath the spawn
//! machinery of *Exploiting Postdominance for Speculative Parallelization*:
//! a direction-parametric gen/kill [`solve`]r over compact [`BitSet`]s,
//! with two concrete analyses — [`LiveSets`]/[`InterLiveness`] (backward
//! liveness, per-function and whole-program) and [`ReachingDefs`] (forward
//! reaching definitions, with a use-of-undefined-register check) — plus
//! [`read_before_write_masks`], which extracts the *dynamic* counterpart
//! of liveness from an execution trace so the two can be differentially
//! tested against each other.
//!
//! The layering is deliberate: the solver knows nothing about programs
//! (it takes successor lists), the analyses know nothing about policy
//! (what counts as defined at entry is a caller choice), and the verifier
//! in `polyflow-core` composes them into lint diagnostics.
//!
//! Solving comes in two flavors with one contract: the sequential
//! worklist [`solve`] and the SCC-parallel [`solve_parallel`], which
//! Tarjan-condenses the propagation graph ([`scc`]) and schedules
//! components over work-stealing deques — returning a bit-identical
//! [`Solution`] (DESIGN.md §12 has the argument; [`oracle`] has the
//! differential harness that enforces it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod dynamic;
mod liveness;
pub mod oracle;
mod parallel;
mod reaching;
pub mod scc;
mod solver;

pub use bitset::BitSet;
pub use dynamic::read_before_write_masks;
pub use liveness::{regs_of, InterLiveness, LiveSets, SuperGraph, REG_DOMAIN};
pub use parallel::solve_parallel;
pub use reaching::{DefSite, EntryDefs, ReachingDefs, UndefinedUse};
pub use solver::{solve, Direction, GenKill, Problem, Solution};
