//! Bitset worklist dataflow analyses over PolyFlow CFGs.
//!
//! This crate supplies the static-analysis substrate beneath the spawn
//! machinery of *Exploiting Postdominance for Speculative Parallelization*:
//! a direction-parametric gen/kill [`solve`]r over compact [`BitSet`]s,
//! with two concrete analyses — [`LiveSets`]/[`InterLiveness`] (backward
//! liveness, per-function and whole-program) and [`ReachingDefs`] (forward
//! reaching definitions, with a use-of-undefined-register check) — plus
//! [`read_before_write_masks`], which extracts the *dynamic* counterpart
//! of liveness from an execution trace so the two can be differentially
//! tested against each other.
//!
//! The layering is deliberate: the solver knows nothing about programs
//! (it takes successor lists), the analyses know nothing about policy
//! (what counts as defined at entry is a caller choice), and the verifier
//! in `polyflow-core` composes them into lint diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod dynamic;
mod liveness;
mod reaching;
mod solver;

pub use bitset::BitSet;
pub use dynamic::read_before_write_masks;
pub use liveness::{regs_of, InterLiveness, LiveSets, REG_DOMAIN};
pub use reaching::{DefSite, EntryDefs, ReachingDefs, UndefinedUse};
pub use solver::{solve, Direction, GenKill, Problem, Solution};
