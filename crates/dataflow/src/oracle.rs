//! The sequential-oracle harness for the parallel solver.
//!
//! The correctness contract of [`solve_parallel`] is differential: on any
//! problem, its [`Solution`] must be **bit-identical** to the sequential
//! [`solve`]'s. This module provides the pieces the differential tests
//! (in this crate, `polyflow-bench`, and CI) are built from:
//!
//! * [`OwnedProblem`] — a problem that owns its storage, so generators
//!   and test tables can build and pass problems around (the borrowing
//!   [`Problem`] view is for solver calls).
//! * [`check_against_oracle`] — solves sequentially once, then asserts
//!   equality at each requested worker count, reporting the first
//!   mismatching node.
//! * [`CfgShape`] / [`random_problem`] — a SplitMix64-driven generator
//!   whose shapes target the SCC structures that stress the scheduler:
//!   long chains (all-trivial condensations), diamond ladders (join
//!   nodes), irreducible two-entry loops (cyclic components Tarjan must
//!   not split), giant single SCCs (one component owns the whole graph —
//!   zero parallelism, pure local fixpoint), and wide DAGs (maximum
//!   ready-queue pressure).
//!
//! [`solve_parallel`]: crate::parallel::solve_parallel

use crate::bitset::BitSet;
use crate::parallel::solve_parallel;
use crate::reaching::EntryDefs;
use crate::solver::{solve, Direction, GenKill, Problem, Solution};
use polyflow_cfg::Cfg;
use polyflow_isa::rng::SplitMix64;
use polyflow_isa::Program;

/// A gen/kill problem that owns its storage.
#[derive(Debug, Clone)]
pub struct OwnedProblem {
    /// Propagation direction.
    pub direction: Direction,
    /// Lattice domain size.
    pub domain: usize,
    /// Per-node transfer functions.
    pub transfer: Vec<GenKill>,
    /// Per-node successor lists (program order).
    pub succs: Vec<Vec<usize>>,
    /// Boundary nodes.
    pub boundary_nodes: Vec<usize>,
    /// Value injected at boundary nodes.
    pub boundary_value: BitSet,
}

impl OwnedProblem {
    /// The borrowing view solvers take.
    pub fn as_problem(&self) -> Problem<'_> {
        Problem {
            direction: self.direction,
            domain: self.domain,
            transfer: &self.transfer,
            succs: &self.succs,
            boundary_nodes: &self.boundary_nodes,
            boundary_value: self.boundary_value.clone(),
        }
    }
}

/// The backward liveness problem [`crate::LiveSets::compute`] solves for
/// one function — the differential tests pose it to both solvers.
pub fn function_liveness_problem(program: &Program, cfg: &Cfg) -> OwnedProblem {
    crate::liveness::function_liveness_problem(program, cfg)
}

/// The forward reaching-definitions problem
/// [`crate::ReachingDefs::compute_with`] solves for one function.
pub fn function_reaching_problem(program: &Program, cfg: &Cfg, entry: EntryDefs) -> OwnedProblem {
    crate::reaching::function_reaching_problem(program, cfg, entry).0
}

/// Solves `p` with the sequential oracle, then with [`solve_parallel`] at
/// each worker count in `jobs`, and reports the first divergence as
/// `Err` (which node, which side, both values).
pub fn check_against_oracle(p: &Problem<'_>, jobs: &[usize]) -> Result<(), String> {
    let oracle = solve(p);
    for &j in jobs {
        let got = solve_parallel(p, j);
        if let Err(e) = explain_mismatch(&oracle, &got) {
            return Err(format!("jobs={j}: {e}"));
        }
    }
    Ok(())
}

/// Pinpoints the first differing node between two solutions.
fn explain_mismatch(oracle: &Solution, got: &Solution) -> Result<(), String> {
    if oracle == got {
        return Ok(());
    }
    if oracle.entry.len() != got.entry.len() {
        return Err(format!(
            "node count {} vs {}",
            oracle.entry.len(),
            got.entry.len()
        ));
    }
    for i in 0..oracle.entry.len() {
        if oracle.entry[i] != got.entry[i] {
            return Err(format!(
                "entry[{i}]: oracle {:?} vs parallel {:?}",
                oracle.entry[i].iter().collect::<Vec<_>>(),
                got.entry[i].iter().collect::<Vec<_>>()
            ));
        }
        if oracle.exit[i] != got.exit[i] {
            return Err(format!(
                "exit[{i}]: oracle {:?} vs parallel {:?}",
                oracle.exit[i].iter().collect::<Vec<_>>(),
                got.exit[i].iter().collect::<Vec<_>>()
            ));
        }
    }
    Err("solutions differ but no node does (impossible)".to_string())
}

/// CFG shapes the fuzzer can target, chosen for the SCC structure they
/// induce (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfgShape {
    /// A straight chain with occasional forward skips: every component
    /// trivial, condensation is the longest possible dependency chain.
    Chain,
    /// A ladder of if-then-else diamonds: trivial components with joins.
    Diamond,
    /// Two-entry (irreducible) loops strung in sequence: small cyclic
    /// components that a dominator-based decomposition would mishandle
    /// but Tarjan keeps whole.
    Irreducible,
    /// One ring through every node plus random chords: the entire graph
    /// is a single giant SCC — no DAG parallelism, pure local fixpoint.
    GiantScc,
    /// A source fanning out to a wide middle layer that reconverges:
    /// maximum simultaneous ready components.
    WideDag,
    /// Arbitrary random edges: an uncontrolled mix of SCC sizes.
    Mixed,
}

impl CfgShape {
    /// Every shape, in a fixed order (fuzz sweeps iterate this).
    pub const ALL: [CfgShape; 6] = [
        CfgShape::Chain,
        CfgShape::Diamond,
        CfgShape::Irreducible,
        CfgShape::GiantScc,
        CfgShape::WideDag,
        CfgShape::Mixed,
    ];

    /// Stable name, used by the fuzz corpus (`shape:<label>` lines).
    pub fn label(self) -> &'static str {
        match self {
            CfgShape::Chain => "chain",
            CfgShape::Diamond => "diamond",
            CfgShape::Irreducible => "irreducible",
            CfgShape::GiantScc => "giant-scc",
            CfgShape::WideDag => "wide-dag",
            CfgShape::Mixed => "mixed",
        }
    }

    /// Inverse of [`CfgShape::label`].
    pub fn from_label(s: &str) -> Option<CfgShape> {
        CfgShape::ALL.into_iter().find(|sh| sh.label() == s)
    }
}

/// Generates a random problem of the given shape. Deterministic in
/// `(seed, shape)`; direction, domain size (crossing the one-word
/// boundary about half the time), transfer functions, and boundary all
/// vary with the seed.
pub fn random_problem(seed: u64, shape: CfgShape) -> OwnedProblem {
    let mut rng = SplitMix64::new(seed ^ (shape.label().len() as u64) << 32 ^ seed.rotate_left(17));
    let succs = random_edges(&mut rng, shape);
    let n = succs.len();
    let domain = 1 + rng.index(120); // 1..=120: 0-, 1-, and 2-word sets
    let direction = if rng.flip() {
        Direction::Forward
    } else {
        Direction::Backward
    };
    let transfer = (0..n)
        .map(|_| {
            let mut t = GenKill::identity(domain);
            for _ in 0..rng.index(4) {
                t.gen.insert(rng.index(domain));
            }
            for _ in 0..rng.index(4) {
                t.kill.insert(rng.index(domain));
            }
            t
        })
        .collect();
    // Boundary: the natural entry/exit for the direction, plus an
    // occasional random extra; sometimes a non-empty boundary value.
    let mut boundary_nodes = match direction {
        Direction::Forward => vec![0],
        Direction::Backward => {
            let sinks: Vec<usize> = (0..n).filter(|&v| succs[v].is_empty()).collect();
            if sinks.is_empty() {
                vec![n - 1]
            } else {
                sinks
            }
        }
    };
    if n > 1 && rng.index(4) == 0 {
        boundary_nodes.push(rng.index(n));
        boundary_nodes.sort_unstable();
        boundary_nodes.dedup();
    }
    let mut boundary_value = BitSet::new(domain);
    for _ in 0..rng.index(3) {
        boundary_value.insert(rng.index(domain));
    }
    OwnedProblem {
        direction,
        domain,
        transfer,
        succs,
        boundary_nodes,
        boundary_value,
    }
}

/// Builds the successor lists for one shape.
fn random_edges(rng: &mut SplitMix64, shape: CfgShape) -> Vec<Vec<usize>> {
    match shape {
        CfgShape::Chain => {
            let n = 2 + rng.index(60);
            (0..n)
                .map(|i| {
                    let mut ss = Vec::new();
                    if i + 1 < n {
                        ss.push(i + 1);
                    }
                    if i + 2 < n && rng.index(4) == 0 {
                        ss.push(i + 2); // forward skip
                    }
                    ss
                })
                .collect()
        }
        CfgShape::Diamond => {
            // Diamonds a -> {b, c} -> d chained d -> a'.
            let rungs = 1 + rng.index(12);
            let n = rungs * 4;
            let mut succs = vec![Vec::new(); n];
            for r in 0..rungs {
                let a = r * 4;
                succs[a] = vec![a + 1, a + 2];
                succs[a + 1] = vec![a + 3];
                succs[a + 2] = vec![a + 3];
                if a + 4 < n {
                    succs[a + 3] = vec![a + 4];
                }
            }
            succs
        }
        CfgShape::Irreducible => {
            // Repeated (header -> {e1, e2}, e1 <-> e2, e1 -> next) units.
            let units = 1 + rng.index(8);
            let n = units * 4;
            let mut succs = vec![Vec::new(); n];
            for u in 0..units {
                let h = u * 4;
                let (e1, e2, tail) = (h + 1, h + 2, h + 3);
                succs[h] = vec![e1, e2]; // both loop entries reachable
                succs[e1] = vec![e2, tail];
                succs[e2] = vec![e1];
                if h + 4 < n {
                    succs[tail] = vec![h + 4];
                }
            }
            succs
        }
        CfgShape::GiantScc => {
            let n = 3 + rng.index(40);
            let mut succs: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1) % n]).collect();
            for _ in 0..rng.index(n) + 2 {
                let (u, v) = (rng.index(n), rng.index(n));
                if !succs[u].contains(&v) {
                    succs[u].push(v); // chord; the ring keeps it one SCC
                }
            }
            succs
        }
        CfgShape::WideDag => {
            let width = 2 + rng.index(40);
            let n = width + 2;
            let mut succs = vec![Vec::new(); n];
            succs[0] = (1..=width).collect();
            for middle in &mut succs[1..=width] {
                *middle = vec![n - 1];
            }
            succs
        }
        CfgShape::Mixed => {
            let n = 2 + rng.index(50);
            (0..n)
                .map(|_| {
                    let deg = rng.index(3);
                    let mut ss: Vec<usize> = (0..deg).map(|_| rng.index(n)).collect();
                    ss.sort_unstable();
                    ss.dedup();
                    ss
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for shape in CfgShape::ALL {
            assert_eq!(CfgShape::from_label(shape.label()), Some(shape));
        }
        assert_eq!(CfgShape::from_label("nope"), None);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = random_problem(42, CfgShape::Mixed);
        let b = random_problem(42, CfgShape::Mixed);
        assert_eq!(a.succs, b.succs);
        assert_eq!(a.boundary_nodes, b.boundary_nodes);
        assert_eq!(a.domain, b.domain);
    }

    #[test]
    fn giant_scc_really_is_one_component() {
        for seed in 0..10 {
            let p = random_problem(seed, CfgShape::GiantScc);
            let cond = crate::scc::condense(&p.succs);
            assert_eq!(cond.len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn oracle_reports_mismatches() {
        let good = Solution {
            entry: vec![BitSet::of(4, &[1])],
            exit: vec![BitSet::new(4)],
        };
        let mut bad = good.clone();
        bad.entry[0].insert(2);
        let err = explain_mismatch(&good, &bad).unwrap_err();
        assert!(err.contains("entry[0]"), "got: {err}");
    }

    #[test]
    fn every_shape_matches_oracle_smoke() {
        for shape in CfgShape::ALL {
            for seed in 0..5 {
                let p = random_problem(seed, shape);
                check_against_oracle(&p.as_problem(), &[1, 2, 4])
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", shape.label()));
            }
        }
    }
}
