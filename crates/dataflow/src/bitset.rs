//! A compact fixed-domain bit set over `u64` words.

/// A set of small integers `0..domain`, stored one bit per element.
///
/// This is the lattice element of every analysis in this crate: register
/// sets are `BitSet`s with domain 32, reaching-definition sets have one
/// bit per definition site. All operations needed by a union/gen-kill
/// worklist solver are provided; the mutating set operations report
/// whether they changed the set so the solver can drive its worklist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    domain: usize,
}

impl BitSet {
    /// Creates an empty set over `0..domain`.
    pub fn new(domain: usize) -> BitSet {
        BitSet {
            words: vec![0; domain.div_ceil(64)],
            domain,
        }
    }

    /// Creates a set containing the given elements.
    ///
    /// # Panics
    ///
    /// Panics if any element is outside the domain.
    pub fn of(domain: usize, elems: &[usize]) -> BitSet {
        let mut s = BitSet::new(domain);
        for &e in elems {
            s.insert(e);
        }
        s
    }

    /// The domain size this set ranges over.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Adds `x`; returns true if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the domain.
    pub fn insert(&mut self, x: usize) -> bool {
        assert!(x < self.domain, "{x} outside domain {}", self.domain);
        let (w, b) = (x / 64, 1u64 << (x % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    /// Removes `x`; returns true if it was present.
    pub fn remove(&mut self, x: usize) -> bool {
        if x >= self.domain {
            return false;
        }
        let (w, b) = (x / 64, 1u64 << (x % 64));
        let had = self.words[w] & b != 0;
        self.words[w] &= !b;
        had
    }

    /// True if `x` is in the set.
    pub fn contains(&self, x: usize) -> bool {
        x < self.domain && self.words[x / 64] & (1 << (x % 64)) != 0
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self |= other`; returns true if `self` grew.
    ///
    /// # Panics
    ///
    /// Panics if the domains differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let merged = *a | b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    /// `self &= other`; returns true if `self` shrank.
    ///
    /// # Panics
    ///
    /// Panics if the domains differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let masked = *a & b;
            changed |= masked != *a;
            *a = masked;
        }
        changed
    }

    /// `self -= other`; returns true if `self` shrank.
    ///
    /// # Panics
    ///
    /// Panics if the domains differ.
    pub fn subtract(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let masked = *a & !b;
            changed |= masked != *a;
            *a = masked;
        }
        changed
    }

    /// `self = other`, reusing `self`'s allocation.
    ///
    /// # Panics
    ///
    /// Panics if the domains differ.
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// `out = self ∪ other` in a single pass, reusing `out`'s allocation.
    ///
    /// The SCC-local fixpoint of the parallel solver rebuilds each
    /// transfer output many times; this avoids the intermediate clone
    /// that `out = self.clone(); out.union_with(other)` would make.
    ///
    /// # Panics
    ///
    /// Panics if any of the three domains differ.
    pub fn union_with_into(&self, other: &BitSet, out: &mut BitSet) {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        assert_eq!(self.domain, out.domain, "output domain mismatch");
        for (o, (&a, &b)) in out
            .words
            .iter_mut()
            .zip(self.words.iter().zip(&other.words))
        {
            *o = a | b;
        }
    }

    /// True if every element of `self` is in `other`.
    ///
    /// This is the word-level fast path the SCC-local fixpoint uses to
    /// skip meet updates: `a & !b == 0` one word at a time, returning at
    /// the first word with an element outside `other` — a read-only probe
    /// that is cheaper than a mutating union when (as near the fixpoint)
    /// most propagations change nothing.
    ///
    /// # Panics
    ///
    /// Panics if the domains differ.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.domain, other.domain, "domain mismatch");
        for (&a, &b) in self.words.iter().zip(&other.words) {
            if a & !b != 0 {
                return false;
            }
        }
        true
    }

    /// The lowest 64 elements as a bit mask (bit `i` set iff `i` is in the
    /// set). Handy for register sets, whose domain is 32.
    pub fn low_word(&self) -> u64 {
        self.words.first().copied().unwrap_or(0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "double insert reports no change");
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.remove(4096), "out of domain remove is a no-op");
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn insert_out_of_domain_panics() {
        BitSet::new(8).insert(8);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::of(100, &[1, 5, 64, 99]);
        let b = BitSet::of(100, &[5, 64]);
        let mut u = b.clone();
        assert!(u.union_with(&a));
        assert!(!u.union_with(&a), "idempotent");
        assert_eq!(u, a);
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));

        let mut d = a.clone();
        assert!(d.subtract(&b));
        assert_eq!(d, BitSet::of(100, &[1, 99]));

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i, b);
        assert!(!i.intersect_with(&b));
    }

    /// `union_with_into` and `copy_from` across the empty-, single-, and
    /// multi-word layouts (domains 0, 40, 130).
    #[test]
    fn union_with_into_all_word_counts() {
        let cases: [(usize, &[usize], &[usize]); 3] = [
            (0, &[], &[]),
            (40, &[1, 39], &[0, 39]),
            (130, &[0, 64, 129], &[63, 64, 70]),
        ];
        for (domain, xs, ys) in cases {
            let a = BitSet::of(domain, xs);
            let b = BitSet::of(domain, ys);
            let mut expect = a.clone();
            expect.union_with(&b);
            let mut out = BitSet::of(domain, ys); // stale contents must be overwritten
            a.union_with_into(&b, &mut out);
            assert_eq!(out, expect, "domain {domain}");

            let mut copied = BitSet::of(domain, ys);
            copied.copy_from(&a);
            assert_eq!(copied, a, "domain {domain}");
        }
    }

    /// The subset fast path across the same word layouts, including the
    /// early-exit case (difference in the first word of several).
    #[test]
    fn is_subset_all_word_counts() {
        assert!(BitSet::new(0).is_subset_of(&BitSet::new(0)), "∅ ⊆ ∅");
        let small = BitSet::of(40, &[3]);
        assert!(small.is_subset_of(&BitSet::of(40, &[3, 7])));
        assert!(!BitSet::of(40, &[8]).is_subset_of(&small));
        let wide = BitSet::of(130, &[5, 129]);
        assert!(wide.is_subset_of(&BitSet::of(130, &[5, 64, 129])));
        assert!(
            !BitSet::of(130, &[0, 129]).is_subset_of(&wide),
            "first-word mismatch exits early"
        );
        assert!(
            !BitSet::of(130, &[5, 128]).is_subset_of(&wide),
            "last-word mismatch detected"
        );
    }

    #[test]
    #[should_panic(expected = "output domain mismatch")]
    fn union_with_into_rejects_mismatched_output() {
        let a = BitSet::new(10);
        let b = BitSet::new(10);
        let mut out = BitSet::new(11);
        a.union_with_into(&b, &mut out);
    }

    #[test]
    fn iter_in_order() {
        let s = BitSet::of(200, &[3, 64, 65, 199]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 65, 199]);
    }

    #[test]
    fn low_word_mask() {
        let s = BitSet::of(32, &[0, 4, 31]);
        assert_eq!(s.low_word(), 1 | (1 << 4) | (1 << 31));
        assert_eq!(BitSet::new(0).low_word(), 0);
    }
}
