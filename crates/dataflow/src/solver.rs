//! Direction-parametric gen/kill worklist solver.
//!
//! The solver fixes the *may* (union-meet) family of gen/kill problems —
//! enough for liveness and reaching definitions — over an abstract node
//! graph: callers hand in successor lists rather than a `Cfg`, so the same
//! solver runs both per-function graphs and the whole-program supergraph
//! used by interprocedural liveness.

use crate::bitset::BitSet;

/// Direction of dataflow propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along edges (reaching definitions).
    Forward,
    /// Facts flow against edges (liveness).
    Backward,
}

/// The transfer function of one node: `out = gen ∪ (in ∖ kill)`.
///
/// For a [`Direction::Backward`] problem, "in" is the value at the node's
/// program-order *end* and "out" the value at its *start*; gen/kill must be
/// computed accordingly (e.g. liveness gen = upward-exposed uses).
#[derive(Debug, Clone)]
pub struct GenKill {
    /// Facts the node generates.
    pub gen: BitSet,
    /// Facts the node kills.
    pub kill: BitSet,
}

impl GenKill {
    /// An identity transfer (`gen = kill = ∅`) over the given domain.
    pub fn identity(domain: usize) -> GenKill {
        GenKill {
            gen: BitSet::new(domain),
            kill: BitSet::new(domain),
        }
    }
}

/// A gen/kill dataflow problem over an abstract graph.
#[derive(Debug)]
pub struct Problem<'a> {
    /// Propagation direction.
    pub direction: Direction,
    /// Lattice domain size (bits per set).
    pub domain: usize,
    /// Per-node transfer functions (`transfer.len()` is the node count).
    pub transfer: &'a [GenKill],
    /// Per-node successor lists (edges in program order, regardless of
    /// direction; the solver reverses them itself for backward problems).
    pub succs: &'a [Vec<usize>],
    /// Nodes whose meet additionally includes `boundary_value`: entry
    /// nodes for forward problems, exit nodes for backward ones.
    pub boundary_nodes: &'a [usize],
    /// The value injected at boundary nodes.
    pub boundary_value: BitSet,
}

/// Per-node fixpoint of a [`Problem`].
///
/// `entry[n]` is the dataflow value at node `n`'s program-order start and
/// `exit[n]` the value at its end — for backward problems `entry` is the
/// *output* of `n`'s transfer function (e.g. live-in) and `exit` its input
/// (live-out).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Value at each node's start (live-in / reach-in).
    pub entry: Vec<BitSet>,
    /// Value at each node's end (live-out / reach-out).
    pub exit: Vec<BitSet>,
}

/// Materializes the propagation graph of a problem: `flow_in[v]` are the
/// nodes whose transfer outputs join into `v`'s meet, `flow_out[u]` the
/// nodes depending on `u`'s output. Forward problems propagate along
/// `succs`; backward problems against them. Shared by [`solve`] and
/// [`crate::parallel::solve_parallel`] so both validate and orient edges
/// identically.
///
/// # Panics
///
/// Panics if `succs` and `transfer` disagree on the node count, if an
/// edge names a node out of range, or if the boundary domain mismatches.
pub(crate) fn propagation_graph(p: &Problem<'_>) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let n = p.transfer.len();
    assert_eq!(p.succs.len(), n, "succs/transfer node count mismatch");
    assert_eq!(p.boundary_value.domain(), p.domain, "boundary domain");
    let mut flow_in: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut flow_out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, ss) in p.succs.iter().enumerate() {
        for &v in ss {
            assert!(v < n, "edge {u}->{v} out of range");
            match p.direction {
                Direction::Forward => {
                    flow_in[v].push(u);
                    flow_out[u].push(v);
                }
                Direction::Backward => {
                    flow_in[u].push(v);
                    flow_out[v].push(u);
                }
            }
        }
    }
    (flow_in, flow_out)
}

/// Maps per-node (meet, transfer-output) values back onto program-order
/// (entry, exit): a forward meet is the entry value, a backward meet the
/// exit value.
pub(crate) fn assemble(direction: Direction, meet: Vec<BitSet>, trans: Vec<BitSet>) -> Solution {
    match direction {
        Direction::Forward => Solution {
            entry: meet,
            exit: trans,
        },
        Direction::Backward => Solution {
            entry: trans,
            exit: meet,
        },
    }
}

/// Runs the worklist algorithm to a fixpoint.
///
/// Complexity is O(edges × domain/64) per pass with the usual fast
/// convergence of round-robin + worklist iteration.
///
/// # Panics
///
/// Panics if `succs` and `transfer` disagree on the node count, if an edge
/// names a node out of range, or if a set domain mismatches.
pub fn solve(p: &Problem<'_>) -> Solution {
    let n = p.transfer.len();
    // Edges along which facts propagate: forward uses succs as-is,
    // backward propagates from a node to its predecessors — which is
    // exactly "along succs, swapped at meet time". We materialize the
    // propagation graph once.
    let (_flow_in, flow_out) = propagation_graph(p);

    let mut is_boundary = vec![false; n];
    for &b in p.boundary_nodes {
        is_boundary[b] = true;
    }

    // meet_val[n] = boundary? ∪ ⋃ trans_val[flow_in]; trans_val = transfer.
    let mut meet_val: Vec<BitSet> = (0..n)
        .map(|i| {
            if is_boundary[i] {
                p.boundary_value.clone()
            } else {
                BitSet::new(p.domain)
            }
        })
        .collect();
    let mut trans_val: Vec<BitSet> = vec![BitSet::new(p.domain); n];

    let apply = |t: &GenKill, input: &BitSet| -> BitSet {
        let mut v = input.clone();
        v.subtract(&t.kill);
        v.union_with(&t.gen);
        v
    };

    // Seed every node once and iterate to fixpoint: processing a node
    // recomputes its transfer output from the current meet and pushes it
    // into dependents; a dependent whose meet grows is re-enqueued. Meets
    // only grow, so this terminates. Initial order: reverse node order for
    // backward problems (blocks are laid out roughly in program order, so
    // this approximates postorder), forward order otherwise.
    let mut on_list = vec![true; n];
    let mut worklist: std::collections::VecDeque<usize> = match p.direction {
        Direction::Forward => (0..n).collect(),
        Direction::Backward => (0..n).rev().collect(),
    };

    while let Some(u) = worklist.pop_front() {
        on_list[u] = false;
        trans_val[u] = apply(&p.transfer[u], &meet_val[u]);
        for &d in &flow_out[u] {
            if meet_val[d].union_with(&trans_val[u]) && !on_list[d] {
                on_list[d] = true;
                worklist.push_back(d);
            }
        }
    }

    // Map (meet, trans) back onto program-order (entry, exit).
    assemble(p.direction, meet_val, trans_val)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond 0 -> {1,2} -> 3 with a fact generated in 1 and killed in 2.
    #[test]
    fn forward_union_over_diamond() {
        let domain = 2;
        let mut t = vec![
            GenKill::identity(domain),
            GenKill::identity(domain),
            GenKill::identity(domain),
            GenKill::identity(domain),
        ];
        t[0].gen.insert(0); // fact 0 born at entry
        t[1].gen.insert(1); // fact 1 born on the left arm
        t[2].kill.insert(0); // right arm kills fact 0
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let sol = solve(&Problem {
            direction: Direction::Forward,
            domain,
            transfer: &t,
            succs: &succs,
            boundary_nodes: &[0],
            boundary_value: BitSet::new(domain),
        });
        // Join sees fact 0 (via left) and fact 1 (may-union).
        assert!(sol.entry[3].contains(0) && sol.entry[3].contains(1));
        assert!(sol.exit[2].is_empty());
        assert_eq!(sol.exit[0], BitSet::of(domain, &[0]));
    }

    /// Liveness-shaped backward problem over a loop 0 -> 1 -> {1, 2}.
    #[test]
    fn backward_loop_reaches_fixpoint() {
        let domain = 1;
        let mut t = vec![
            GenKill::identity(domain),
            GenKill::identity(domain),
            GenKill::identity(domain),
        ];
        t[2].gen.insert(0); // used after the loop
        let succs = vec![vec![1], vec![1, 2], vec![]];
        let sol = solve(&Problem {
            direction: Direction::Backward,
            domain,
            transfer: &t,
            succs: &succs,
            boundary_nodes: &[2],
            boundary_value: BitSet::new(domain),
        });
        // The use in node 2 is live throughout the loop.
        assert!(sol.entry[0].contains(0));
        assert!(sol.exit[1].contains(0));
        assert!(sol.entry[2].contains(0));
        assert!(sol.exit[2].is_empty());
    }

    #[test]
    fn kill_stops_backward_propagation() {
        let domain = 1;
        let mut t = vec![
            GenKill::identity(domain),
            GenKill::identity(domain),
            GenKill::identity(domain),
        ];
        t[1].kill.insert(0); // redefined in the middle
        t[2].gen.insert(0);
        let succs = vec![vec![1], vec![2], vec![]];
        let sol = solve(&Problem {
            direction: Direction::Backward,
            domain,
            transfer: &t,
            succs: &succs,
            boundary_nodes: &[2],
            boundary_value: BitSet::new(domain),
        });
        assert!(sol.entry[1].is_empty(), "killed before the use");
        assert!(sol.entry[0].is_empty());
    }

    #[test]
    fn boundary_value_enters_at_boundary_nodes() {
        let domain = 3;
        let t = vec![GenKill::identity(domain), GenKill::identity(domain)];
        let succs = vec![vec![1], vec![]];
        let sol = solve(&Problem {
            direction: Direction::Forward,
            domain,
            transfer: &t,
            succs: &succs,
            boundary_nodes: &[0],
            boundary_value: BitSet::of(domain, &[2]),
        });
        assert!(sol.entry[0].contains(2));
        assert!(sol.entry[1].contains(2), "flows through identity nodes");
    }
}
