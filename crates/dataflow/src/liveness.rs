//! Register liveness, intraprocedural and whole-program.
//!
//! Liveness is the backward may-problem over register sets: a register is
//! live at a point if some path from that point reads it before writing
//! it. The paper's Task Spawn Unit needs exactly this at spawn targets —
//! the registers a spawned task synchronizes on (§3.1's hint-entry
//! registers) are the task's live-ins.
//!
//! Two granularities are provided:
//!
//! * [`LiveSets`] — per-function, treating call fall-throughs as opaque
//!   (the callee's effect is ignored). Cheap, but *unsound* as a bound on
//!   what a spawned task — which runs the whole dynamic suffix, including
//!   callees and the caller's continuation — may read first.
//! * [`InterLiveness`] — the whole-program supergraph: every function's
//!   blocks plus call, return, and cross-function transfer edges. Its
//!   live-in at a PC over-approximates the registers any dynamic suffix
//!   starting at that PC reads before writing, which is the invariant the
//!   differential trace check in `tests/static_analysis.rs` exercises.

use crate::bitset::BitSet;
use crate::parallel::solve_parallel;
use crate::solver::{solve, Direction, GenKill, Problem, Solution};
use polyflow_cfg::{BlockId, Cfg, EdgeKind};
use polyflow_isa::{Inst, Pc, Program, Reg};

/// Register-set domain size.
pub const REG_DOMAIN: usize = Reg::COUNT;

/// Converts a register set to the registers it contains, in index order.
/// `r0` is never reported (it is a constant, not a dataflow fact).
pub fn regs_of(set: &BitSet) -> Vec<Reg> {
    set.iter()
        .filter(|&i| i != 0)
        .map(Reg::from_index)
        .collect()
}

/// Upward-exposed uses (gen) and definitions (kill) of one straight-line
/// instruction range.
fn range_gen_kill(program: &Program, start: Pc, end: Pc) -> GenKill {
    let mut t = GenKill::identity(REG_DOMAIN);
    for i in start.index()..end.index() {
        let inst = program.inst(Pc::new(i as u32));
        for src in inst.srcs().into_iter().flatten() {
            if src != Reg::R0 && !t.kill.contains(src.index()) {
                t.gen.insert(src.index());
            }
        }
        if let Some(d) = inst.dst() {
            t.kill.insert(d.index());
        }
    }
    t
}

/// Walks a block tail backwards: the registers live immediately before
/// executing `pc`, given the live-out set at the end of `pc`'s block.
fn live_before_in_block(program: &Program, block_end: Pc, pc: Pc, live_out: &BitSet) -> BitSet {
    let mut live = live_out.clone();
    for i in (pc.index()..block_end.index()).rev() {
        let inst = program.inst(Pc::new(i as u32));
        if let Some(d) = inst.dst() {
            live.remove(d.index());
        }
        for src in inst.srcs().into_iter().flatten() {
            if src != Reg::R0 {
                live.insert(src.index());
            }
        }
    }
    live
}

/// Poses one function's backward liveness as an owned problem — exactly
/// what [`LiveSets::compute`] solves. Public through
/// [`crate::oracle::function_liveness_problem`] so the differential
/// tests can run both solvers over every workload function.
pub(crate) fn function_liveness_problem(
    program: &Program,
    cfg: &Cfg,
) -> crate::oracle::OwnedProblem {
    let n = cfg.len();
    let transfer: Vec<GenKill> = cfg
        .blocks()
        .iter()
        .map(|b| range_gen_kill(program, b.start, b.end))
        .collect();
    let succs: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            cfg.succs(BlockId::from_index(i))
                .iter()
                .map(|&(t, _)| t.index())
                .collect()
        })
        .collect();
    let boundary: Vec<usize> = cfg.exits().iter().map(|b| b.index()).collect();
    crate::oracle::OwnedProblem {
        direction: Direction::Backward,
        domain: REG_DOMAIN,
        transfer,
        succs,
        boundary_nodes: boundary,
        boundary_value: BitSet::new(REG_DOMAIN),
    }
}

/// Intraprocedural live register sets for one [`Cfg`].
#[derive(Debug, Clone)]
pub struct LiveSets {
    live_in: Vec<BitSet>,
    live_out: Vec<BitSet>,
}

impl LiveSets {
    /// Solves liveness over `cfg`. Exit blocks have empty live-out (the
    /// function's effect on its caller flows through memory and the
    /// return value registers of the *caller's* liveness, not modeled
    /// here — see [`InterLiveness`] for the sound whole-program version).
    pub fn compute(program: &Program, cfg: &Cfg) -> LiveSets {
        let p = function_liveness_problem(program, cfg);
        let Solution { entry, exit } = solve(&p.as_problem());
        LiveSets {
            live_in: entry,
            live_out: exit,
        }
    }

    /// Registers live at the start of `b`.
    pub fn live_in(&self, b: BlockId) -> &BitSet {
        &self.live_in[b.index()]
    }

    /// Registers live at the end of `b`.
    pub fn live_out(&self, b: BlockId) -> &BitSet {
        &self.live_out[b.index()]
    }

    /// Registers live immediately before executing `pc`.
    ///
    /// Returns `None` if `pc` is outside the CFG's function.
    pub fn live_before(&self, program: &Program, cfg: &Cfg, pc: Pc) -> Option<BitSet> {
        let b = cfg.block_at(pc)?;
        Some(live_before_in_block(
            program,
            cfg.block(b).end,
            pc,
            &self.live_out[b.index()],
        ))
    }
}

/// Whole-program ("supergraph") liveness.
///
/// One graph over every function's blocks, with:
///
/// * all intraprocedural edges — including the call fall-through edge,
///   which over-approximates (it models the callee as possibly reading
///   nothing and returning immediately) but keeps the result a superset;
/// * call edges: a direct-call block flows into its callee's entry; an
///   indirect call conservatively flows into *every* function entry (the
///   program carries no target metadata for `callr`);
/// * return edges: each `ret` block flows into the fall-through block of
///   every call site that may have called its function;
/// * cross-function transfer edges for branches/jumps whose target lies
///   in another function (the CFG layer treats these as exits).
///
/// The per-PC result is precomputed, so lookups are O(1) and need no
/// `Program` in hand.
#[derive(Debug, Clone)]
pub struct InterLiveness {
    /// Live-before mask (bit per register) for every instruction.
    per_pc: Vec<u64>,
}

/// The whole-program flow graph interprocedural analyses solve over:
/// every function's blocks as one node space, plus call, return, and
/// cross-function transfer edges. Built once, it can be posed as a
/// backward liveness problem or a forward reachability-style problem —
/// the differential oracle tests exercise both directions over it.
#[derive(Debug, Clone)]
pub struct SuperGraph {
    transfer: Vec<GenKill>,
    succs: Vec<Vec<usize>>,
    boundary: Vec<usize>,
    base: Vec<usize>,
    entries: Vec<usize>,
}

impl SuperGraph {
    /// Constructs the supergraph of `program` over the given per-function
    /// CFGs (in `Cfg::build_all` order).
    pub fn build(program: &Program, cfgs: &[Cfg]) -> SuperGraph {
        let mut base = Vec::with_capacity(cfgs.len());
        let mut total = 0usize;
        for cfg in cfgs {
            base.push(total);
            total += cfg.len();
        }
        // Global lookup: the supergraph node containing a PC.
        let global_at = |pc: Pc| -> Option<usize> {
            cfgs.iter()
                .enumerate()
                .find(|(_, c)| c.function().contains(pc))
                .and_then(|(f, c)| c.block_at(pc).map(|b| base[f] + b.index()))
        };
        let entry_nodes: Vec<usize> = (0..cfgs.len()).map(|f| base[f]).collect();

        let mut transfer = Vec::with_capacity(total);
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); total];
        let mut boundary = Vec::new();
        // Call sites per callee: fall-through supergraph nodes of direct
        // calls, keyed by callee cfg index; indirect call fall-throughs
        // may return from any function.
        let mut direct_returns: Vec<Vec<usize>> = vec![Vec::new(); cfgs.len()];
        let mut any_returns: Vec<usize> = Vec::new();

        for (f, cfg) in cfgs.iter().enumerate() {
            for block in cfg.blocks() {
                let g = base[f] + block.id.index();
                transfer.push(range_gen_kill(program, block.start, block.end));
                let mut fall_through = None;
                for &(t, kind) in cfg.succs(block.id) {
                    succs[g].push(base[f] + t.index());
                    if kind == EdgeKind::CallFallThrough {
                        fall_through = Some(base[f] + t.index());
                    }
                }
                let tpc = block.terminator_pc();
                match cfg.terminator(block.id) {
                    Inst::Call { target } => {
                        if let Some(callee) = global_at(target) {
                            succs[g].push(callee);
                        }
                        let callee_f = cfgs.iter().position(|c| c.function().contains(target));
                        if let (Some(cf), Some(ft)) = (callee_f, fall_through) {
                            direct_returns[cf].push(ft)
                        }
                    }
                    Inst::CallR { .. } => {
                        // No static targets: may enter any function and
                        // return from any of them.
                        succs[g].extend(entry_nodes.iter().copied());
                        if let Some(ft) = fall_through {
                            any_returns.push(ft);
                        }
                    }
                    Inst::Br { target, .. } | Inst::Jmp { target }
                        if !cfg.function().contains(target) =>
                    {
                        if let Some(t) = global_at(target) {
                            succs[g].push(t);
                        }
                    }
                    Inst::Jr { .. } => {
                        for &t in program.jump_targets(tpc) {
                            if !cfg.function().contains(t) {
                                if let Some(gt) = global_at(t) {
                                    succs[g].push(gt);
                                }
                            }
                        }
                    }
                    _ => {}
                }
                if matches!(cfg.terminator(block.id), Inst::Halt) {
                    boundary.push(g);
                }
            }
        }
        // Return edges: ret blocks flow into every plausible return point.
        for (f, cfg) in cfgs.iter().enumerate() {
            for block in cfg.blocks() {
                if !matches!(cfg.terminator(block.id), Inst::Ret) {
                    continue;
                }
                let g = base[f] + block.id.index();
                succs[g].extend(direct_returns[f].iter().copied());
                succs[g].extend(any_returns.iter().copied());
                if direct_returns[f].is_empty() && any_returns.is_empty() {
                    // Nothing ever calls this function: its return is a
                    // program exit for liveness purposes.
                    boundary.push(g);
                }
            }
        }
        for s in &mut succs {
            s.sort_unstable();
            s.dedup();
        }
        SuperGraph {
            transfer,
            succs,
            boundary,
            base,
            entries: entry_nodes,
        }
    }

    /// Number of supergraph nodes (blocks across all functions).
    pub fn len(&self) -> usize {
        self.transfer.len()
    }

    /// True if the program has no blocks.
    pub fn is_empty(&self) -> bool {
        self.transfer.is_empty()
    }

    /// The supergraph node holding block `b` of function index `f`.
    pub fn node(&self, f: usize, b: BlockId) -> usize {
        self.base[f] + b.index()
    }

    /// Whole-program liveness as a solver problem: backward over
    /// register sets, boundary at program exits (`halt` blocks and
    /// returns of uncalled functions).
    pub fn liveness_problem(&self) -> Problem<'_> {
        Problem {
            direction: Direction::Backward,
            domain: REG_DOMAIN,
            transfer: &self.transfer,
            succs: &self.succs,
            boundary_nodes: &self.boundary,
            boundary_value: BitSet::new(REG_DOMAIN),
        }
    }

    /// The same graph posed forward — a reaching-style problem with the
    /// boundary at function entries. The oracle harness uses this to
    /// cover the forward direction at supergraph scale.
    pub fn forward_problem(&self) -> Problem<'_> {
        Problem {
            direction: Direction::Forward,
            domain: REG_DOMAIN,
            transfer: &self.transfer,
            succs: &self.succs,
            boundary_nodes: &self.entries,
            boundary_value: BitSet::new(REG_DOMAIN),
        }
    }
}

impl InterLiveness {
    /// Builds the supergraph and solves backward liveness over it, using
    /// the SCC-parallel solver with the process-wide worker count
    /// (`--jobs` / `POLYFLOW_JOBS` / CPU count — see
    /// [`polyflow_pool::resolve_jobs`]). The parallel solver is
    /// bit-identical to the sequential one, so the worker count can
    /// never show through in the result.
    pub fn compute(program: &Program) -> InterLiveness {
        InterLiveness::compute_with_jobs(program, polyflow_pool::resolve_jobs())
    }

    /// [`InterLiveness::compute`] with an explicit worker count for the
    /// supergraph solve (`lint --jobs` times both paths through this).
    pub fn compute_with_jobs(program: &Program, jobs: usize) -> InterLiveness {
        let cfgs = Cfg::build_all(program);
        let sg = SuperGraph::build(program, &cfgs);
        let Solution { entry: _, exit } = solve_parallel(&sg.liveness_problem(), jobs);
        let base = &sg.base;

        // Precompute per-instruction live-before masks with one backward
        // scan per block.
        let mut per_pc = vec![0u64; program.len()];
        for (f, cfg) in cfgs.iter().enumerate() {
            for block in cfg.blocks() {
                let g = base[f] + block.id.index();
                let mut live = exit[g].clone();
                for i in (block.start.index()..block.end.index()).rev() {
                    let inst = program.inst(Pc::new(i as u32));
                    if let Some(d) = inst.dst() {
                        live.remove(d.index());
                    }
                    for src in inst.srcs().into_iter().flatten() {
                        if src != Reg::R0 {
                            live.insert(src.index());
                        }
                    }
                    per_pc[i] = live.low_word() & !1; // r0 is not a fact
                }
            }
        }
        InterLiveness { per_pc }
    }

    /// Bit mask (bit `i` = register `ri`) of registers live immediately
    /// before executing `pc`, in the whole-program sense. Returns 0 for
    /// out-of-range PCs.
    pub fn live_mask(&self, pc: Pc) -> u64 {
        self.per_pc.get(pc.index()).copied().unwrap_or(0)
    }

    /// The registers live immediately before executing `pc`, in index
    /// order (never includes `r0`).
    pub fn live_regs(&self, pc: Pc) -> Vec<Reg> {
        let mask = self.live_mask(pc);
        Reg::ALL
            .into_iter()
            .filter(|r| *r != Reg::R0 && mask & (1 << r.index()) != 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{AluOp, Cond, ProgramBuilder};

    /// r1 = 1; loop { r2 += r1 } while r2 < 10; r3 = r2; halt
    fn loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 1); // 0
        b.li(Reg::R2, 0); // 1
        b.bind_label(top);
        b.alu(AluOp::Add, Reg::R2, Reg::R2, Reg::R1); // 2
        b.br_imm(Cond::Lt, Reg::R2, 10, top); // 3,4 (li r28; br)
        b.alu(AluOp::Add, Reg::R3, Reg::R2, Reg::R0); // 5
        b.halt(); // 6
        b.end_function();
        b.build().unwrap()
    }

    #[test]
    fn loop_carried_register_is_live_at_header() {
        let p = loop_program();
        let cfg = Cfg::build(&p, p.function("main").unwrap());
        let live = LiveSets::compute(&p, &cfg);
        let header = cfg.block_at(Pc::new(2)).unwrap();
        // r1 and r2 are live at the loop header (both read each iteration).
        assert!(live.live_in(header).contains(Reg::R1.index()));
        assert!(live.live_in(header).contains(Reg::R2.index()));
        // r3 is dead everywhere before pc 5 writes it.
        assert!(!live.live_in(header).contains(Reg::R3.index()));
        // At entry, nothing is live-in except what pc 0/1 feed: none.
        assert!(!live.live_in(cfg.entry()).contains(Reg::R3.index()));
    }

    #[test]
    fn live_before_walks_the_block_tail() {
        let p = loop_program();
        let cfg = Cfg::build(&p, p.function("main").unwrap());
        let live = LiveSets::compute(&p, &cfg);
        // Immediately before pc 2 (add r2, r2, r1): r1 and r2 live.
        let at2 = live.live_before(&p, &cfg, Pc::new(2)).unwrap();
        assert!(at2.contains(Reg::R1.index()) && at2.contains(Reg::R2.index()));
        // Immediately before pc 5 (r3 = r2): r2 live, r1 dead.
        let at5 = live.live_before(&p, &cfg, Pc::new(5)).unwrap();
        assert!(at5.contains(Reg::R2.index()));
        assert!(!at5.contains(Reg::R1.index()));
        assert!(live.live_before(&p, &cfg, Pc::new(99)).is_none());
    }

    #[test]
    fn r0_is_never_live() {
        let p = loop_program();
        let cfg = Cfg::build(&p, p.function("main").unwrap());
        let live = LiveSets::compute(&p, &cfg);
        for b in cfg.blocks() {
            assert!(!live.live_in(b.id).contains(0));
        }
        let inter = InterLiveness::compute(&p);
        for i in 0..p.len() {
            assert_eq!(inter.live_mask(Pc::new(i as u32)) & 1, 0);
        }
    }

    /// Caller reads r5 after the call; callee neither reads nor writes it.
    /// Interprocedural liveness must see r5 live inside the callee.
    #[test]
    fn liveness_crosses_call_boundaries() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.li(Reg::R5, 7); // 0
        b.call("leaf"); // 1
        b.alu(AluOp::Add, Reg::R6, Reg::R5, Reg::R0); // 2: reads r5
        b.halt(); // 3
        b.end_function();
        b.begin_function("leaf");
        b.alui(AluOp::Add, Reg::R9, Reg::R9, 1); // 4
        b.ret(); // 5
        b.end_function();
        let p = b.build().unwrap();

        let inter = InterLiveness::compute(&p);
        // r5 is live at the callee entry: the suffix (leaf body, return,
        // pc 2) reads it before writing it.
        assert!(inter.live_mask(Pc::new(4)) & (1 << 5) != 0);
        assert!(inter.live_regs(Pc::new(4)).contains(&Reg::R5));
        // r9 is read at the callee entry too.
        assert!(inter.live_regs(Pc::new(4)).contains(&Reg::R9));
        // At pc 2 the call is done: r5 still live, ra (written by nothing
        // later) dead.
        assert!(inter.live_regs(Pc::new(2)).contains(&Reg::R5));

        // The intraprocedural view, by contrast, sees r5 dead in leaf.
        let leaf_cfg = Cfg::build(&p, p.function("leaf").unwrap());
        let leaf_live = LiveSets::compute(&p, &leaf_cfg);
        assert!(!leaf_live
            .live_in(leaf_cfg.entry())
            .contains(Reg::R5.index()));
    }

    #[test]
    fn ret_reads_the_link_register() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.call("leaf"); // 0
        b.halt(); // 1
        b.end_function();
        b.begin_function("leaf");
        b.ret(); // 2
        b.end_function();
        let p = b.build().unwrap();
        let inter = InterLiveness::compute(&p);
        // ra is live at leaf entry (ret reads it) but dead before the
        // call (the call itself writes it).
        assert!(inter.live_regs(Pc::new(2)).contains(&Reg::RA));
        assert!(!inter.live_regs(Pc::new(0)).contains(&Reg::RA));
    }

    #[test]
    fn regs_of_reports_in_index_order() {
        let s = BitSet::of(REG_DOMAIN, &[0, 3, 1, 31]);
        assert_eq!(regs_of(&s), vec![Reg::R1, Reg::R3, Reg::R31]);
    }
}
