//! Dynamic read-before-write sets from execution traces.
//!
//! The speculative-task model of the paper says a task spawned at a
//! target PC begins executing the dynamic suffix of the program from
//! that PC. The registers such a task reads *before writing them* are
//! exactly what the spawn hint mechanism must forward. This module
//! extracts those sets from a concrete trace so that static liveness can
//! be validated against them: for every occurrence of a target PC, the
//! dynamic read-before-write set must be a subset of the static
//! (whole-program) live-in set at that PC.

use polyflow_isa::{Pc, Reg, Trace};
use std::collections::HashMap;

/// For each requested PC, the union over all its trace occurrences of the
/// registers the dynamic suffix starting there reads before writing.
///
/// Masks are bit-per-register (`bit i` = `ri`); `r0` is never included.
/// PCs that never occur in the trace map to 0.
///
/// Computed with a single backward pass: maintaining the suffix
/// read-before-write set `S` costs O(1) amortized per trace entry, so the
/// whole computation is O(trace length), independent of how many target
/// PCs are asked for.
pub fn read_before_write_masks(trace: &Trace, targets: &[Pc]) -> HashMap<Pc, u64> {
    let mut acc: HashMap<Pc, u64> = targets.iter().map(|&pc| (pc, 0u64)).collect();
    // S = registers the suffix starting at the *current* entry reads
    // before writing.
    let mut suffix: u64 = 0;
    for e in trace.entries().iter().rev() {
        if let Some(d) = e.inst.dst() {
            suffix &= !(1 << d.index());
        }
        for src in e.inst.srcs().into_iter().flatten() {
            if src != Reg::R0 {
                suffix |= 1 << src.index();
            }
        }
        if let Some(mask) = acc.get_mut(&e.pc) {
            *mask |= suffix;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyflow_isa::{execute_window, AluOp, Cond, ProgramBuilder};

    #[test]
    fn suffix_reads_are_unioned_over_occurrences() {
        // r1 = 3; loop 3×: r2 += r1; halt. At the loop body pc, the
        // suffix reads r1 (add) and r2 (add + the exit compare).
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 3); // 0
        b.li(Reg::R2, 0); // 1
        b.bind_label(top);
        b.alu(AluOp::Add, Reg::R2, Reg::R2, Reg::R1); // 2
        b.br_imm(Cond::Lt, Reg::R2, 9, top); // 3,4
        b.halt(); // 5
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 10_000).unwrap().trace;

        let masks = read_before_write_masks(&trace, &[Pc::new(2), Pc::new(5), Pc::new(0)]);
        let at2 = masks[&Pc::new(2)];
        assert!(at2 & (1 << 1) != 0, "suffix at loop body reads r1");
        assert!(at2 & (1 << 2) != 0, "suffix at loop body reads r2");
        // The suffix from halt reads nothing.
        assert_eq!(masks[&Pc::new(5)], 0);
        // The suffix from pc 0 writes r1 before the loop reads it, and
        // writes r2 at pc 1: nothing is read-before-write.
        assert_eq!(masks[&Pc::new(0)], 0);
        assert!(!masks.contains_key(&Pc::new(1)), "only requested targets");
    }

    #[test]
    fn writes_shadow_later_reads() {
        // pc 1 writes r4, pc 2 reads it: from pc 1 the read is shadowed,
        // from pc 2 it is exposed.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.li(Reg::R3, 1); // 0
        b.li(Reg::R4, 2); // 1
        b.alu(AluOp::Add, Reg::R5, Reg::R4, Reg::R3); // 2
        b.halt(); // 3
        b.end_function();
        let p = b.build().unwrap();
        let trace = execute_window(&p, 100).unwrap().trace;
        let masks = read_before_write_masks(&trace, &[Pc::new(1), Pc::new(2)]);
        assert_eq!(masks[&Pc::new(1)] & (1 << 4), 0);
        assert!(masks[&Pc::new(2)] & (1 << 4) != 0);
        assert!(masks[&Pc::new(2)] & (1 << 3) != 0);
    }
}
