//! Differential tests: `solve_parallel` must be bit-identical to the
//! sequential `solve` oracle on solver edge cases and on the fuzzed CFG
//! distribution (ISSUE 6 / DESIGN.md §12).
//!
//! Program-level cases build real PolyFlow programs and pose exactly the
//! problems the shipped analyses solve (per-function liveness and
//! reaching definitions, supergraph liveness both directions);
//! distribution cases sweep the shape-controlled generator.

use polyflow_cfg::Cfg;
use polyflow_dataflow::oracle::{
    check_against_oracle, function_liveness_problem, function_reaching_problem, random_problem,
    CfgShape, OwnedProblem,
};
use polyflow_dataflow::scc::condense;
use polyflow_dataflow::{BitSet, Direction, EntryDefs, SuperGraph};
use polyflow_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

/// The edge-case worker counts the ISSUE pins: sequential fallback and a
/// genuinely threaded schedule.
const EDGE_JOBS: [usize; 2] = [1, 4];

/// Checks every analysis problem the repo derives from `program`:
/// per-function liveness (backward) and reaching defs (forward, both
/// entry policies), plus supergraph liveness and its forward twin.
fn check_program(program: &Program, jobs: &[usize]) {
    let cfgs = Cfg::build_all(program);
    for cfg in &cfgs {
        let name = &cfg.function().name;
        let live = function_liveness_problem(program, cfg);
        check_against_oracle(&live.as_problem(), jobs)
            .unwrap_or_else(|e| panic!("{name} liveness: {e}"));
        for entry in [EntryDefs::All, EntryDefs::Strict] {
            let reach = function_reaching_problem(program, cfg, entry);
            check_against_oracle(&reach.as_problem(), jobs)
                .unwrap_or_else(|e| panic!("{name} reaching {entry:?}: {e}"));
        }
    }
    let sg = SuperGraph::build(program, &cfgs);
    check_against_oracle(&sg.liveness_problem(), jobs)
        .unwrap_or_else(|e| panic!("supergraph liveness: {e}"));
    check_against_oracle(&sg.forward_problem(), jobs)
        .unwrap_or_else(|e| panic!("supergraph forward: {e}"));
}

/// Empty problem (a function with no blocks contributes no nodes): both
/// solvers must agree on the degenerate zero-node system.
#[test]
fn empty_function_matches_oracle() {
    let p = OwnedProblem {
        direction: Direction::Backward,
        domain: 8,
        transfer: Vec::new(),
        succs: Vec::new(),
        boundary_nodes: Vec::new(),
        boundary_value: BitSet::new(8),
    };
    check_against_oracle(&p.as_problem(), &EDGE_JOBS).unwrap();
    // And the smallest real function: one halt instruction, one block.
    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    b.halt();
    b.end_function();
    check_program(&b.build().unwrap(), &EDGE_JOBS);
}

/// A single block that jumps to itself: the condensation is one cyclic
/// singleton, exercising the local fixpoint with no DAG edges at all.
#[test]
fn single_block_self_loop_matches_oracle() {
    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    let top = b.fresh_label("top");
    b.bind_label(top);
    b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    b.jmp(top);
    b.end_function();
    let program = b.build().unwrap();
    let cfg = Cfg::build(&program, program.function("main").unwrap());
    let live = function_liveness_problem(&program, &cfg);
    let cond = condense(&live.succs);
    assert!(
        cond.cyclic.iter().any(|&c| c),
        "the self-loop must form a cyclic component"
    );
    check_program(&program, &EDGE_JOBS);
}

/// An irreducible loop entered at two distinct blocks: Tarjan must keep
/// the loop one component (a dominator-based region split would not),
/// and the parallel fixpoint over it must match the oracle.
#[test]
fn irreducible_two_entry_loop_matches_oracle() {
    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    let e1 = b.fresh_label("e1");
    let e2 = b.fresh_label("e2");
    b.li(Reg::R1, 0); // entry: falls into e1, branches to e2
    b.br_imm(Cond::Lt, Reg::R1, 1, e2);
    b.bind_label(e1);
    b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
    b.jmp(e2);
    b.bind_label(e2);
    b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    b.br_imm(Cond::Lt, Reg::R3, 10, e1); // back edge; falls through to exit
    b.halt();
    b.end_function();
    let program = b.build().unwrap();
    let cfg = Cfg::build(&program, program.function("main").unwrap());
    let live = function_liveness_problem(&program, &cfg);
    let cond = condense(&live.succs);
    assert!(
        cond.members.iter().any(|m| m.len() >= 2),
        "e1 and e2 must share a component"
    );
    check_program(&program, &EDGE_JOBS);
}

/// A supergraph where one function is a single giant SCC: a ring of
/// blocks, each conditionally branching to the next with a back edge
/// from the last. The whole ring is one component — no DAG parallelism,
/// everything rides on the SCC-local fixpoint.
#[test]
fn giant_single_scc_function_matches_oracle() {
    const RING: usize = 24;
    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    b.call("ring");
    b.halt();
    b.end_function();
    b.begin_function("ring");
    let labels: Vec<_> = (0..RING).map(|i| b.fresh_label(&format!("r{i}"))).collect();
    for i in 0..RING {
        b.bind_label(labels[i]);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 1000, labels[(i + 1) % RING]);
    }
    b.ret();
    b.end_function();
    let program = b.build().unwrap();
    let cfgs = Cfg::build_all(&program);
    let ring_cfg = cfgs
        .iter()
        .find(|c| c.function().name == "ring")
        .expect("ring cfg");
    let live = function_liveness_problem(&program, ring_cfg);
    let cond = condense(&live.succs);
    let biggest = cond.members.iter().map(Vec::len).max().unwrap();
    assert!(
        biggest >= RING,
        "expected a giant component, biggest was {biggest} of {} blocks",
        ring_cfg.len()
    );
    check_program(&program, &EDGE_JOBS);
}

/// The fuzzed CFG distribution the acceptance criteria pin: ≥200
/// generated problems across every shape, each checked at jobs 1, 2, 4.
#[test]
fn fuzzed_cfg_distribution_matches_oracle() {
    let mut checked = 0usize;
    for shape in CfgShape::ALL {
        for seed in 0..35 {
            let p = random_problem(seed, shape);
            check_against_oracle(&p.as_problem(), &[1, 2, 4])
                .unwrap_or_else(|e| panic!("shape {} seed {seed}: {e}", shape.label()));
            checked += 1;
        }
    }
    assert!(checked >= 200, "only {checked} problems checked");
}
