//! Randomized tests: any well-formed program round-trips through the
//! assembly text format unchanged. Cases come from a fixed-seed
//! [`SplitMix64`] stream so runs are reproducible.

use polyflow_isa::rng::SplitMix64;
use polyflow_isa::{parse_program, to_asm, Cond, Program, ProgramBuilder, Reg};

/// Same arbitrary-digraph generator as the CFG randomized tests: `n`
/// one-instruction regions with arbitrary terminators.
fn arbitrary_program(choices: &[(u8, usize, usize)]) -> Program {
    let n = choices.len();
    let mut b = ProgramBuilder::new();
    b.begin_function("rand");
    let labels: Vec<_> = (0..n).map(|i| b.fresh_label(&format!("L{i}"))).collect();
    for (i, &(kind, a, t)) in choices.iter().enumerate() {
        b.bind_label(labels[i]);
        b.nop();
        match kind % 5 {
            0 => {
                b.br(Cond::Eq, Reg::R1, Reg::R2, labels[a % n]);
                if i + 1 == n {
                    b.halt();
                }
            }
            1 => {
                b.jmp(labels[t % n]);
            }
            2 => {
                b.halt();
            }
            3 => {
                // Indirect jump with a two-entry table.
                b.li(Reg::R3, 0);
                b.jr(Reg::R3, &[labels[a % n], labels[t % n]]);
            }
            _ => {
                b.br(Cond::Ne, Reg::R1, Reg::R2, labels[a % n]);
                b.jmp(labels[t % n]);
            }
        }
    }
    b.halt();
    b.end_function();
    b.build().expect("generated program is well formed")
}

#[test]
fn assembly_roundtrip_is_identity() {
    let mut rng = SplitMix64::new(0xa53);
    for case in 0..256 {
        let len = 1 + rng.index(9);
        let choices: Vec<(u8, usize, usize)> = (0..len)
            .map(|_| (rng.below(5) as u8, rng.index(10), rng.index(10)))
            .collect();
        let p1 = arbitrary_program(&choices);
        let text = to_asm(&p1);
        let p2 = parse_program(&text)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{text}"));
        // Byte-identical program: every field (instructions, functions,
        // jump tables, data, name) survives the text round trip.
        assert_eq!(p1, p2, "case {case}:\n{text}");
    }
}

#[test]
fn data_blocks_roundtrip() {
    let mut rng = SplitMix64::new(0xda7a);
    for case in 0..64 {
        let len = 1 + rng.index(19);
        let words: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        let mut b = ProgramBuilder::new();
        b.alloc_data(&words);
        b.begin_function("main");
        b.halt();
        b.end_function();
        let p1 = b.build().unwrap();
        let p2 = parse_program(&to_asm(&p1)).unwrap();
        assert_eq!(p1, p2, "case {case}");
    }
}

/// Randomized data *layouts*: interleave sequential allocations, zeroed
/// gaps, absolute placements and label/function tables, then require the
/// byte-identical round trip. This is the generative form of the gap
/// regression — the old address-less `.data` emission only survived the
/// trivially contiguous layouts above.
#[test]
fn gapped_data_layouts_roundtrip() {
    let mut rng = SplitMix64::new(0x6a9);
    for case in 0..128 {
        let mut b = ProgramBuilder::named("layout");
        b.begin_function("main");
        let l = b.fresh_label("top");
        b.bind_label(l);
        b.nop();
        b.halt();
        b.end_function();
        for _ in 0..1 + rng.index(6) {
            match rng.below(5) {
                0 => {
                    let words: Vec<u64> = (0..1 + rng.index(4)).map(|_| rng.next_u64()).collect();
                    b.alloc_data(&words);
                }
                1 => {
                    b.alloc_zeroed(1 + rng.index(4));
                }
                2 => {
                    // An absolute word far from the cursor, possibly
                    // colliding with an earlier one.
                    let addr = 0x40_000 + 8 * rng.below(8);
                    b.push_initialized_word(addr, rng.next_u64());
                }
                3 => {
                    b.alloc_label_table(&[l]);
                }
                _ => {
                    b.alloc_fn_table(&["main"]);
                }
            }
        }
        let p1 = b.build().unwrap();
        let text = to_asm(&p1);
        let p2 = parse_program(&text)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{text}"));
        assert_eq!(p1, p2, "case {case}:\n{text}");
    }
}
