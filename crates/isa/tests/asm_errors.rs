//! Table-driven `AsmError` position tests: every diagnostic must point
//! at the offending token (1-based line and column), not line 0/1 or the
//! end of the file. Each row is `(source, line, column, token, message
//! fragment)`.

use polyflow_isa::parse_program;

struct Case {
    name: &'static str,
    src: &'static str,
    line: usize,
    column: usize,
    token: &'static str,
    fragment: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "duplicate label points at the second binding",
        src: "fn main {\nloop:\n    nop\nloop:\n    halt\n}",
        line: 4,
        column: 1,
        token: "loop",
        fragment: "bound twice",
    },
    Case {
        name: "duplicate label reports the first binding line",
        src: "fn main {\n    nop\nagain:\n    nop\nagain:\n    halt\n}",
        line: 5,
        column: 1,
        token: "again",
        fragment: "line 3",
    },
    Case {
        name: "indented duplicate label keeps its column",
        src: "fn main {\n  top:\n    nop\n  top:\n    halt\n}",
        line: 4,
        column: 3,
        token: "top",
        fragment: "bound twice",
    },
    Case {
        name: "forward reference to a never-bound label points at the jump",
        src: "fn main {\n    j nowhere\n    halt\n}",
        line: 2,
        column: 7,
        token: "nowhere",
        fragment: "nowhere",
    },
    Case {
        name: "unbound branch target points at the branch operand",
        src: "fn main {\n    nop\n    beq r1, r2, missing\n    halt\n}",
        line: 3,
        column: 17,
        token: "missing",
        fragment: "missing",
    },
    Case {
        name: "unbound jump-table entry points at the jr line",
        src: "fn main {\n    jr r1, [gone]\n    halt\n}",
        line: 2,
        column: 13,
        token: "gone",
        fragment: "gone",
    },
    Case {
        name: "call to an undefined function points at the call",
        src: "fn main {\n    call helper\n    halt\n}",
        line: 2,
        column: 10,
        token: "helper",
        fragment: "helper",
    },
    Case {
        name: "lfa of an undefined function points at the lfa",
        src: "fn main {\n    lfa r4, ghost\n    halt\n}",
        line: 2,
        column: 13,
        token: "ghost",
        fragment: "ghost",
    },
    Case {
        name: "trailing operand after li",
        src: "fn main {\n    li r1, 5, r9\n    halt\n}",
        line: 2,
        column: 15,
        token: "r9",
        fragment: "trailing",
    },
    Case {
        name: "trailing operand after halt",
        src: "fn main {\n    halt r1\n}",
        line: 2,
        column: 10,
        token: "r1",
        fragment: "trailing",
    },
    Case {
        name: "trailing operand after ret",
        src: "fn f {\n    ret r2\n}\nfn main {\n    halt\n}",
        line: 2,
        column: 9,
        token: "r2",
        fragment: "trailing",
    },
    Case {
        name: "trailing operand after a branch",
        src: "fn main {\nl:\n    beq r1, r2, l, r3\n    halt\n}",
        line: 3,
        column: 20,
        token: "r3",
        fragment: "trailing",
    },
    Case {
        name: "trailing operand after nop",
        src: "fn main {\n    nop 3\n    halt\n}",
        line: 2,
        column: 9,
        token: "3",
        fragment: "trailing",
    },
    Case {
        name: "unknown mnemonic keeps its position",
        src: "fn main {\n    nop\n    frob r1, r2\n    halt\n}",
        line: 3,
        column: 5,
        token: "frob",
        fragment: "unknown mnemonic",
    },
    Case {
        name: "bad data address token",
        src: ".data x @ wat = [1]\n\nfn main {\n    halt\n}",
        line: 1,
        column: 11,
        token: "wat",
        fragment: "data address",
    },
];

#[test]
fn error_positions_point_at_the_offending_token() {
    for c in CASES {
        let e = parse_program(c.src)
            .map(|_| ())
            .expect_err(&format!("{}: expected an error", c.name));
        assert_eq!(e.line, c.line, "{}: line ({e})", c.name);
        assert_eq!(e.column, c.column, "{}: column ({e})", c.name);
        assert_eq!(e.token, c.token, "{}: token ({e})", c.name);
        assert!(
            e.message.contains(c.fragment),
            "{}: message `{}` lacks `{}`",
            c.name,
            e.message,
            c.fragment
        );
    }
}
