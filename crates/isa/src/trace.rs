//! Retired-instruction traces and derived oracle information.
//!
//! The functional interpreter emits a [`Trace`]: the exact sequence of
//! retired instructions with their branch outcomes and memory addresses.
//! The timing simulator replays this trace (trace-driven simulation, see
//! DESIGN.md §3) and uses two derived oracles:
//!
//! * [`Dataflow`] — for every trace entry, the index of the producing entry
//!   for each register source and (for loads) the producing store, and
//! * [`PcIndex`] — for every static `Pc`, the sorted list of dynamic
//!   occurrences, supporting the Task Spawn Unit's "is the spawn target
//!   reached soon?" check (paper §3.2).

use crate::inst::{Inst, InstClass, Reg};
use crate::program::{Pc, Program};
use std::collections::HashMap;
use std::fmt;

/// A structural defect detected in a [`Trace`] by [`Trace::validate`] and
/// friends. A well-formed trace (anything the interpreter emits) never
/// produces one; these surface corruption — bit flips, truncation, bogus
/// PCs — as typed errors instead of downstream misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// `entries[index].next_pc` does not match `entries[index + 1].pc`.
    Discontinuity {
        /// Index of the earlier entry of the broken pair.
        index: usize,
        /// Its recorded successor.
        next_pc: Pc,
        /// The actual `pc` of the following entry.
        actual: Pc,
    },
    /// A load or store entry carries no effective address.
    MissingMemAddr {
        /// The offending entry.
        index: usize,
    },
    /// A non-memory entry carries an effective address.
    UnexpectedMemAddr {
        /// The offending entry.
        index: usize,
    },
    /// A non-control-transfer entry is marked taken.
    TakenNonControl {
        /// The offending entry.
        index: usize,
    },
    /// An unconditional control transfer is marked not-taken.
    NotTakenUnconditional {
        /// The offending entry.
        index: usize,
    },
    /// A `halt` retired before the final entry.
    HaltNotLast {
        /// The offending entry.
        index: usize,
    },
    /// The trace does not end in a `halt` (truncated execution).
    Truncated {
        /// `pc` of the final entry.
        last_pc: Pc,
    },
    /// An entry's `pc` lies outside the program text.
    PcOutOfProgram {
        /// The offending entry.
        index: usize,
        /// Its out-of-range `pc`.
        pc: Pc,
    },
    /// An entry's recorded instruction differs from the program text at
    /// its `pc`.
    InstMismatch {
        /// The offending entry.
        index: usize,
        /// The entry's `pc`.
        pc: Pc,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Discontinuity {
                index,
                next_pc,
                actual,
            } => write!(
                f,
                "trace discontinuity at entry {index}: next_pc {next_pc} but successor is {actual}"
            ),
            TraceError::MissingMemAddr { index } => {
                write!(f, "memory entry {index} has no effective address")
            }
            TraceError::UnexpectedMemAddr { index } => {
                write!(f, "non-memory entry {index} carries an effective address")
            }
            TraceError::TakenNonControl { index } => {
                write!(f, "non-control entry {index} is marked taken")
            }
            TraceError::NotTakenUnconditional { index } => {
                write!(
                    f,
                    "unconditional transfer at entry {index} marked not-taken"
                )
            }
            TraceError::HaltNotLast { index } => {
                write!(f, "halt retired at entry {index} before the trace end")
            }
            TraceError::Truncated { last_pc } => {
                write!(
                    f,
                    "trace is truncated: final entry at {last_pc} is not halt"
                )
            }
            TraceError::PcOutOfProgram { index, pc } => {
                write!(f, "entry {index}: pc {pc} outside the program text")
            }
            TraceError::InstMismatch { index, pc } => {
                write!(f, "entry {index}: instruction differs from program at {pc}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// One retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Static program counter.
    pub pc: Pc,
    /// The instruction itself (carried for convenient decoding).
    pub inst: Inst,
    /// For conditional branches: whether the branch was taken.
    pub taken: bool,
    /// The `Pc` of the next retired instruction (the actual successor).
    pub next_pc: Pc,
    /// Effective byte address for loads and stores.
    pub mem_addr: Option<u64>,
}

impl TraceEntry {
    /// Coarse class of the retired instruction.
    pub fn class(&self) -> InstClass {
        self.inst.class()
    }

    /// True if control left the fall-through path at this entry.
    pub fn redirected(&self) -> bool {
        self.next_pc != self.pc.next()
    }
}

/// A retired-instruction trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, e: TraceEntry) {
        self.entries.push(e);
    }

    /// Number of retired instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no instructions were retired.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in retirement order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Mutable access to the entries — a fault-injection hook. Mutation
    /// can break every invariant [`Trace::validate`] and friends check;
    /// consumers are expected to re-validate after corrupting.
    pub fn entries_mut(&mut self) -> &mut [TraceEntry] {
        &mut self.entries
    }

    /// Drops every entry past the first `len` — the truncation
    /// fault-injection operator ([`Trace::validate_complete`] flags the
    /// result when the new tail is not a halt).
    pub fn truncate(&mut self, len: usize) {
        self.entries.truncate(len);
    }

    /// The entry at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn entry(&self, idx: usize) -> &TraceEntry {
        &self.entries[idx]
    }

    /// Iterates over entries in retirement order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEntry> {
        self.entries.iter()
    }

    /// Computes the dataflow oracle for this trace.
    pub fn dataflow(&self) -> Dataflow {
        Dataflow::compute(self)
    }

    /// Builds the per-`Pc` occurrence index for this trace.
    pub fn pc_index(&self) -> PcIndex {
        PcIndex::build(self)
    }

    /// Counts retired conditional branches.
    pub fn cond_branches(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.class() == InstClass::CondBranch)
            .count()
    }

    /// Checks the structural invariants every interpreter-emitted trace
    /// upholds: retirement-order continuity (`next_pc` chains into the
    /// following entry), effective addresses exactly on memory entries,
    /// taken flags only on control transfers (and always on unconditional
    /// ones), and `halt` nowhere but the final entry.
    ///
    /// Returns the first defect found. Corrupted traces (bit flips, bogus
    /// PCs) fail here instead of silently skewing a simulation.
    pub fn validate(&self) -> Result<(), TraceError> {
        for (i, e) in self.entries.iter().enumerate() {
            let class = e.class();
            let is_mem = matches!(class, InstClass::Load | InstClass::Store);
            if is_mem && e.mem_addr.is_none() {
                return Err(TraceError::MissingMemAddr { index: i });
            }
            if !is_mem && e.mem_addr.is_some() {
                return Err(TraceError::UnexpectedMemAddr { index: i });
            }
            let is_control = matches!(
                class,
                InstClass::CondBranch
                    | InstClass::Jump
                    | InstClass::IndirectJump
                    | InstClass::Call
                    | InstClass::Ret
            );
            if e.taken && !is_control {
                return Err(TraceError::TakenNonControl { index: i });
            }
            if !e.taken && is_control && class != InstClass::CondBranch {
                return Err(TraceError::NotTakenUnconditional { index: i });
            }
            if class == InstClass::Halt && i + 1 != self.entries.len() {
                return Err(TraceError::HaltNotLast { index: i });
            }
            if let Some(next) = self.entries.get(i + 1) {
                if e.next_pc != next.pc {
                    return Err(TraceError::Discontinuity {
                        index: i,
                        next_pc: e.next_pc,
                        actual: next.pc,
                    });
                }
            }
        }
        Ok(())
    }

    /// [`Trace::validate`], additionally requiring a complete execution:
    /// a non-empty trace must end in `halt`. Use this when the trace is
    /// supposed to cover a whole run (windowed traces are legitimately
    /// truncated and should use `validate`).
    pub fn validate_complete(&self) -> Result<(), TraceError> {
        self.validate()?;
        if let Some(last) = self.entries.last() {
            if last.class() != InstClass::Halt {
                return Err(TraceError::Truncated { last_pc: last.pc });
            }
        }
        Ok(())
    }

    /// [`Trace::validate`], additionally checking every entry against the
    /// program text: the `pc` must lie inside `program` and the recorded
    /// instruction must match what the program holds there. Catches
    /// corruption that structural checks alone cannot (a bogus `pc` on a
    /// self-consistent prefix).
    pub fn validate_against(&self, program: &Program) -> Result<(), TraceError> {
        self.validate()?;
        for (i, e) in self.entries.iter().enumerate() {
            match program.get(e.pc) {
                None => return Err(TraceError::PcOutOfProgram { index: i, pc: e.pc }),
                Some(inst) if inst != e.inst => {
                    return Err(TraceError::InstMismatch { index: i, pc: e.pc })
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEntry;
    type IntoIter = std::slice::Iter<'a, TraceEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl FromIterator<TraceEntry> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEntry>>(iter: I) -> Trace {
        Trace {
            entries: iter.into_iter().collect(),
        }
    }
}

/// Per-entry producer information derived from a [`Trace`].
///
/// `reg_producer[i][s]` is the trace index of the instruction that produced
/// the value read by source slot `s` of entry `i` (`None` if the value
/// predates the trace or the slot is unused / reads `r0`).
/// `mem_producer[i]` is, for a load, the index of the most recent prior
/// store to the same word (`None` if the location predates the trace).
#[derive(Debug, Clone)]
pub struct Dataflow {
    reg_producer: Vec<[Option<u32>; 2]>,
    mem_producer: Vec<Option<u32>>,
}

impl Dataflow {
    /// Computes producers with a single forward pass.
    pub fn compute(trace: &Trace) -> Dataflow {
        let n = trace.len();
        let mut reg_producer = vec![[None, None]; n];
        let mut mem_producer = vec![None; n];
        let mut last_writer: [Option<u32>; Reg::COUNT] = [None; Reg::COUNT];
        let mut last_store: HashMap<u64, u32> = HashMap::new();

        for (i, e) in trace.iter().enumerate() {
            let srcs = e.inst.srcs();
            for (s, src) in srcs.into_iter().enumerate() {
                if let Some(r) = src {
                    if r != Reg::R0 {
                        reg_producer[i][s] = last_writer[r.index()];
                    }
                }
            }
            if e.class() == InstClass::Load {
                if let Some(addr) = e.mem_addr {
                    mem_producer[i] = last_store.get(&crate::Memory::align(addr)).copied();
                }
            }
            if e.class() == InstClass::Store {
                if let Some(addr) = e.mem_addr {
                    last_store.insert(crate::Memory::align(addr), i as u32);
                }
            }
            if let Some(d) = e.inst.dst() {
                last_writer[d.index()] = Some(i as u32);
            }
        }
        Dataflow {
            reg_producer,
            mem_producer,
        }
    }

    /// Register producers for entry `i` (one per source slot).
    pub fn reg_producers(&self, i: usize) -> [Option<u32>; 2] {
        self.reg_producer[i]
    }

    /// Producing store for the load at entry `i`, if any.
    pub fn mem_producer(&self, i: usize) -> Option<u32> {
        self.mem_producer[i]
    }

    /// All producers of entry `i` (registers plus memory), deduplicated.
    pub fn producers(&self, i: usize) -> impl Iterator<Item = u32> + '_ {
        let [a, b] = self.reg_producer[i];
        let m = self.mem_producer[i];
        let mut v: Vec<u32> = [a, b, m].into_iter().flatten().collect();
        v.sort_unstable();
        v.dedup();
        v.into_iter()
    }

    /// Number of entries covered.
    pub fn len(&self) -> usize {
        self.reg_producer.len()
    }

    /// True if the trace was empty.
    pub fn is_empty(&self) -> bool {
        self.reg_producer.is_empty()
    }
}

/// Sorted dynamic occurrences of each static `Pc` in a trace.
#[derive(Debug, Clone, Default)]
pub struct PcIndex {
    occurrences: HashMap<Pc, Vec<u32>>,
}

impl PcIndex {
    /// Builds the index with a single pass over the trace.
    pub fn build(trace: &Trace) -> PcIndex {
        let mut occurrences: HashMap<Pc, Vec<u32>> = HashMap::new();
        for (i, e) in trace.iter().enumerate() {
            occurrences.entry(e.pc).or_default().push(i as u32);
        }
        PcIndex { occurrences }
    }

    /// The first dynamic occurrence of `pc` at trace index `from` or later.
    pub fn next_at_or_after(&self, pc: Pc, from: u32) -> Option<u32> {
        let occ = self.occurrences.get(&pc)?;
        let i = occ.partition_point(|&x| x < from);
        occ.get(i).copied()
    }

    /// Total dynamic occurrences of `pc`.
    pub fn count(&self, pc: Pc) -> usize {
        self.occurrences.get(&pc).map(Vec::len).unwrap_or(0)
    }

    /// Number of distinct static PCs that appear in the trace.
    pub fn distinct_pcs(&self) -> usize {
        self.occurrences.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Cond};

    fn entry(pc: u32, inst: Inst, next: u32) -> TraceEntry {
        TraceEntry {
            pc: Pc::new(pc),
            inst,
            taken: false,
            next_pc: Pc::new(next),
            mem_addr: None,
        }
    }

    #[test]
    fn redirected_detection() {
        let e = entry(0, Inst::Nop, 1);
        assert!(!e.redirected());
        let e = entry(0, Inst::Jmp { target: Pc::new(5) }, 5);
        assert!(e.redirected());
    }

    /// A halting program with a load and a store, plus its program text.
    fn mem_program_trace() -> (Program, Trace) {
        let mut b = crate::builder::ProgramBuilder::new();
        b.begin_function("main");
        let base = b.alloc_data(&[7]);
        b.li(Reg::R1, base as i64);
        b.load(Reg::R2, Reg::R1, 0);
        b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
        b.store(Reg::R2, Reg::R1, 0);
        b.halt();
        b.end_function();
        let p = b.build().expect("valid program");
        let r = crate::interp::execute_window(&p, 100).expect("executes");
        assert!(r.halted);
        (p, r.trace)
    }

    #[test]
    fn interpreter_traces_validate_cleanly() {
        let (p, t) = mem_program_trace();
        t.validate().unwrap();
        t.validate_complete().unwrap();
        t.validate_against(&p).unwrap();
        Trace::new().validate_complete().unwrap();
    }

    #[test]
    fn validate_flags_each_corruption_class() {
        let (p, clean) = mem_program_trace();

        // Discontinuity: rewrite an entry's next_pc off the chain.
        let mut t = clean.clone();
        t.entries[0].next_pc = Pc::new(4);
        assert!(matches!(
            t.validate(),
            Err(TraceError::Discontinuity { index: 0, .. })
        ));

        // Missing effective address on a load.
        let mut t = clean.clone();
        t.entries[1].mem_addr = None;
        assert!(matches!(
            t.validate(),
            Err(TraceError::MissingMemAddr { index: 1 })
        ));

        // Bogus effective address on an ALU op.
        let mut t = clean.clone();
        t.entries[2].mem_addr = Some(0xdead);
        assert!(matches!(
            t.validate(),
            Err(TraceError::UnexpectedMemAddr { index: 2 })
        ));

        // Taken flag flipped on a non-branch.
        let mut t = clean.clone();
        t.entries[0].taken = true;
        assert!(matches!(
            t.validate(),
            Err(TraceError::TakenNonControl { index: 0 })
        ));

        // Truncation: drop the final halt.
        let mut t = clean.clone();
        t.entries.pop();
        t.validate().unwrap();
        assert!(matches!(
            t.validate_complete(),
            Err(TraceError::Truncated { .. })
        ));

        // Bogus pc beyond the program text (self-consistent prefix, so
        // only the program cross-check can catch it).
        let mut t = clean.clone();
        t.entries[0].pc = Pc::new(1000);
        assert!(matches!(
            t.validate_against(&p),
            Err(TraceError::PcOutOfProgram { index: 0, .. })
        ));

        // Instruction bit flip: the text at this pc disagrees.
        let mut t = clean.clone();
        t.entries[2].inst = Inst::Nop;
        assert!(matches!(
            t.validate_against(&p),
            Err(TraceError::InstMismatch { index: 2, .. })
        ));
    }

    #[test]
    fn dataflow_register_chain() {
        // 0: li r1, 1
        // 1: li r2, 2
        // 2: add r3, r1, r2
        // 3: add r4, r3, r3
        let mut t = Trace::new();
        t.push(entry(
            0,
            Inst::Li {
                rd: Reg::R1,
                imm: 1,
            },
            1,
        ));
        t.push(entry(
            1,
            Inst::Li {
                rd: Reg::R2,
                imm: 2,
            },
            2,
        ));
        t.push(entry(
            2,
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg::R3,
                rs: Reg::R1,
                rt: Reg::R2,
            },
            3,
        ));
        t.push(entry(
            3,
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg::R4,
                rs: Reg::R3,
                rt: Reg::R3,
            },
            4,
        ));
        let df = t.dataflow();
        assert_eq!(df.reg_producers(2), [Some(0), Some(1)]);
        assert_eq!(df.reg_producers(3), [Some(2), Some(2)]);
        assert_eq!(df.producers(3).collect::<Vec<_>>(), vec![2]);
        assert_eq!(df.len(), 4);
        assert!(!df.is_empty());
    }

    #[test]
    fn dataflow_r0_has_no_producer() {
        let mut t = Trace::new();
        t.push(entry(
            0,
            Inst::Li {
                rd: Reg::R0,
                imm: 9,
            },
            1,
        )); // discarded
        t.push(entry(
            1,
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg::R1,
                rs: Reg::R0,
                rt: Reg::R0,
            },
            2,
        ));
        let df = t.dataflow();
        assert_eq!(df.reg_producers(1), [None, None]);
    }

    #[test]
    fn dataflow_memory_chain() {
        let mut t = Trace::new();
        let mut st = entry(
            0,
            Inst::Store {
                rs: Reg::R1,
                base: Reg::R0,
                off: 0,
            },
            1,
        );
        st.mem_addr = Some(100);
        t.push(st);
        let mut ld = entry(
            1,
            Inst::Load {
                rd: Reg::R2,
                base: Reg::R0,
                off: 0,
            },
            2,
        );
        ld.mem_addr = Some(101); // same aligned word as 100
        t.push(ld);
        let mut ld2 = entry(
            2,
            Inst::Load {
                rd: Reg::R3,
                base: Reg::R0,
                off: 0,
            },
            3,
        );
        ld2.mem_addr = Some(200); // untouched word
        t.push(ld2);
        let df = t.dataflow();
        assert_eq!(df.mem_producer(1), Some(0));
        assert_eq!(df.mem_producer(2), None);
    }

    #[test]
    fn pc_index_queries() {
        let mut t = Trace::new();
        for (i, pc) in [0u32, 1, 2, 1, 2, 1, 3].into_iter().enumerate() {
            t.push(entry(pc, Inst::Nop, i as u32 + 1));
        }
        let idx = t.pc_index();
        assert_eq!(idx.count(Pc::new(1)), 3);
        assert_eq!(idx.next_at_or_after(Pc::new(1), 0), Some(1));
        assert_eq!(idx.next_at_or_after(Pc::new(1), 2), Some(3));
        assert_eq!(idx.next_at_or_after(Pc::new(1), 6), None);
        assert_eq!(idx.next_at_or_after(Pc::new(9), 0), None);
        assert_eq!(idx.distinct_pcs(), 4);
    }

    #[test]
    fn cond_branch_count() {
        let mut t = Trace::new();
        t.push(entry(0, Inst::Nop, 1));
        t.push(entry(
            1,
            Inst::Br {
                cond: Cond::Eq,
                rs: Reg::R0,
                rt: Reg::R0,
                target: Pc::new(0),
            },
            0,
        ));
        assert_eq!(t.cond_branches(), 1);
    }

    #[test]
    fn trace_collect_and_iter() {
        let t: Trace = (0..3).map(|i| entry(i, Inst::Nop, i + 1)).collect();
        assert_eq!(t.len(), 3);
        assert_eq!(t.iter().count(), 3);
        assert_eq!((&t).into_iter().count(), 3);
        assert_eq!(t.entry(1).pc, Pc::new(1));
    }
}
