//! Sparse 64-bit data memory.

use std::collections::HashMap;

const PAGE_WORDS: usize = 512;
const PAGE_BYTES: u64 = (PAGE_WORDS as u64) * 8;

/// A sparse, word-addressed data memory.
///
/// ```
/// use polyflow_isa::Memory;
///
/// let mut m = Memory::new();
/// m.write(0x1000, 42);
/// assert_eq!(m.read(0x1000), 42);
/// assert_eq!(m.read(0x2000), 0); // unwritten reads as zero
/// ```
///
/// Addresses are byte addresses; accesses operate on aligned 64-bit words
/// (the low three address bits are ignored, as the ISA only defines
/// doubleword loads and stores). Unwritten locations read as zero.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u64; PAGE_WORDS]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Word-aligns a byte address.
    pub fn align(addr: u64) -> u64 {
        addr & !7
    }

    /// Reads the 64-bit word containing byte address `addr`.
    pub fn read(&self, addr: u64) -> u64 {
        let word = Self::align(addr) / 8;
        let page = word / PAGE_WORDS as u64;
        match self.pages.get(&page) {
            Some(p) => p[(word % PAGE_WORDS as u64) as usize],
            None => 0,
        }
    }

    /// Writes the 64-bit word containing byte address `addr`.
    pub fn write(&mut self, addr: u64, value: u64) {
        let word = Self::align(addr) / 8;
        let page = word / PAGE_WORDS as u64;
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]));
        p[(word % PAGE_WORDS as u64) as usize] = value;
    }

    /// Number of resident pages (each spanning `4 KiB`).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes spanned by resident pages.
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(0xdead_beef), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = Memory::new();
        m.write(64, 42);
        assert_eq!(m.read(64), 42);
        // Unaligned access reads the containing word.
        assert_eq!(m.read(67), 42);
        m.write(71, 7); // same word as 64? no: 71 & !7 == 64. Yes.
        assert_eq!(m.read(64), 7);
    }

    #[test]
    fn distinct_pages() {
        let mut m = Memory::new();
        m.write(0, 1);
        m.write(PAGE_BYTES * 3, 2);
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read(0), 1);
        assert_eq!(m.read(PAGE_BYTES * 3), 2);
        assert_eq!(m.resident_bytes(), 2 * PAGE_BYTES);
    }

    #[test]
    fn align_masks_low_bits() {
        assert_eq!(Memory::align(0), 0);
        assert_eq!(Memory::align(7), 0);
        assert_eq!(Memory::align(8), 8);
        assert_eq!(Memory::align(15), 8);
    }
}
