//! A textual assembly format: parse programs from text and render
//! programs back to parseable text.
//!
//! The format is line-based:
//!
//! ```text
//! .data table = [1, 2, 3]        ; named data block (64-bit words)
//!
//! fn main {
//!     la   r16, table            ; load a data block's address
//!     ld   r2, 0(r16)
//! loop:
//!     addi r1, r1, 1
//!     blt  r1, r2, loop
//!     call helper
//!     jr   r3, [loop, done]      ; indirect jump with its jump table
//! done:
//!     halt
//! }
//!
//! fn helper {
//!     lfa  r4, main              ; load a function's entry address
//!     ret
//! }
//! ```
//!
//! * registers are `r0`–`r31`;
//! * ALU mnemonics: `add sub and or xor sll srl sra mul slt sltu`, with an
//!   `i` suffix for the immediate form (`addi r1, r2, -3`);
//! * branches: `beq bne blt bge bgt ble rs, rt, label`;
//! * memory: `ld rd, off(base)` and `sd rs, off(base)`;
//! * `;` or `#` start comments.
//!
//! [`parse_program`] builds through [`crate::ProgramBuilder`], so all of
//! its validation applies; [`to_asm`] renders any [`Program`] into text
//! that parses back to the identical instruction sequence (see the
//! round-trip tests).

use crate::builder::{Label, ProgramBuilder};
use crate::error::BuildError;
use crate::inst::{AluOp, Cond, Inst, Reg};
use crate::program::{Pc, Program};
use std::collections::HashMap;
use std::fmt;

/// An assembly parsing error with its 1-based source position and the
/// offending token (when one exists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based column of the offending token; 0 when no single token is
    /// at fault (structural errors, builder finalization errors).
    pub column: usize,
    /// The offending token, or empty when none applies.
    pub token: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.column > 0 {
            write!(f, "line {}:{}: {}", self.line, self.column, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

impl From<BuildError> for AsmError {
    fn from(e: BuildError) -> AsmError {
        AsmError {
            line: 0,
            column: 0,
            token: String::new(),
            message: e.to_string(),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        column: 0,
        token: String::new(),
        message: message.into(),
    }
}

/// Like [`err`], but records the offending token and locates its column
/// in the raw source line (1-based; 0 if the token is not found there).
fn err_tok(line: usize, raw: &str, tok: &str, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        column: raw.find(tok).map_or(0, |i| i + 1),
        token: tok.to_string(),
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize, raw: &str) -> Result<Reg, AsmError> {
    let idx: usize = tok
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err_tok(line, raw, tok, format!("expected register, got `{tok}`")))?;
    if idx >= Reg::COUNT {
        return Err(err_tok(
            line,
            raw,
            tok,
            format!("register index {idx} out of range"),
        ));
    }
    Ok(Reg::from_index(idx))
}

fn parse_imm(tok: &str, line: usize, raw: &str) -> Result<i64, AsmError> {
    let parse = |s: &str, radix| i64::from_str_radix(s, radix).ok();
    let v = if let Some(h) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        parse(h, 16)
    } else if let Some(h) = tok.strip_prefix("-0x") {
        parse(h, 16).map(|v| -v)
    } else {
        tok.parse().ok()
    };
    v.ok_or_else(|| err_tok(line, raw, tok, format!("expected immediate, got `{tok}`")))
}

fn alu_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "mul" => AluOp::Mul,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        _ => return None,
    })
}

fn cond(m: &str) -> Option<Cond> {
    Some(match m {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "bge" => Cond::Ge,
        "bgt" => Cond::Gt,
        "ble" => Cond::Le,
        _ => return None,
    })
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] for syntax errors (with the offending line) or
/// any [`BuildError`] the underlying builder reports at finalization.
pub fn parse_program(src: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut data_blocks: HashMap<String, u64> = HashMap::new();
    let mut in_fn = false;

    // First pass for named data sizes is unnecessary: data lines must
    // precede their first use, which the format requires by convention;
    // we simply process in order and resolve names as we go.
    let get_label = |b: &mut ProgramBuilder, labels: &mut HashMap<String, Label>, name: &str| {
        *labels
            .entry(name.to_string())
            .or_insert_with(|| b.fresh_label(name))
    };

    for (ln, raw) in src.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        // Data: `.data name = [w, w, ...]`
        if let Some(rest) = line.strip_prefix(".data") {
            let (name, list) = rest
                .split_once('=')
                .ok_or_else(|| err(line_no, ".data needs `name = [..]`"))?;
            let name = name.trim();
            let list = list.trim();
            let inner = list
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| err(line_no, "data words must be `[w, w, ...]`"))?;
            let mut words = Vec::new();
            for tok in inner.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                // Data words are full u64s; also accept negative i64s.
                let w = if let Some(h) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
                    u64::from_str_radix(h, 16).ok()
                } else {
                    tok.parse::<u64>().ok()
                };
                match w {
                    Some(w) => words.push(w),
                    None => words.push(parse_imm(tok, line_no, raw)? as u64),
                }
            }
            let addr = b.alloc_data(&words);
            data_blocks.insert(name.to_string(), addr);
            continue;
        }

        // Function open / close.
        if let Some(rest) = line.strip_prefix("fn ") {
            let name = rest
                .strip_suffix('{')
                .ok_or_else(|| err(line_no, "expected `fn name {`"))?
                .trim();
            if in_fn {
                return Err(err(line_no, "nested `fn`"));
            }
            b.begin_function(name);
            in_fn = true;
            continue;
        }
        if line == "}" {
            if !in_fn {
                return Err(err(line_no, "unmatched `}`"));
            }
            b.end_function();
            in_fn = false;
            continue;
        }

        // Label binding.
        if let Some(name) = line.strip_suffix(':') {
            let l = get_label(&mut b, &mut labels, name.trim());
            b.bind_label(l);
            continue;
        }

        if !in_fn {
            return Err(err(line_no, "instruction outside `fn`"));
        }

        // Instruction: mnemonic, then comma-separated operands (the
        // jump-table bracket keeps its commas).
        let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (line, ""),
        };
        let ops: Vec<String> = if let Some(i) = rest.find('[') {
            let mut v: Vec<String> = rest[..i]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            v.push(rest[i..].to_string());
            v
        } else {
            rest.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        };
        let op = |i: usize| -> Result<&str, AsmError> {
            ops.get(i)
                .map(String::as_str)
                .ok_or_else(|| err(line_no, format!("`{mnemonic}` missing operand {i}")))
        };

        match mnemonic {
            "li" => {
                let rd = parse_reg(op(0)?, line_no, raw)?;
                b.li(rd, parse_imm(op(1)?, line_no, raw)?);
            }
            "la" => {
                let rd = parse_reg(op(0)?, line_no, raw)?;
                let name = op(1)?;
                if let Some(&addr) = data_blocks.get(name) {
                    b.li(rd, addr as i64);
                } else {
                    let l = get_label(&mut b, &mut labels, name);
                    b.li_label_addr(rd, l);
                }
            }
            "lfa" => {
                let rd = parse_reg(op(0)?, line_no, raw)?;
                b.li_fn_addr(rd, op(1)?);
            }
            "ld" | "sd" => {
                let r = parse_reg(op(0)?, line_no, raw)?;
                let mem = op(1)?;
                let (off, base) = mem
                    .split_once('(')
                    .and_then(|(o, rest)| rest.strip_suffix(')').map(|b| (o, b)))
                    .ok_or_else(|| err(line_no, "memory operand must be `off(base)`"))?;
                let off = if off.is_empty() {
                    0
                } else {
                    parse_imm(off, line_no, raw)?
                };
                let base = parse_reg(base, line_no, raw)?;
                if mnemonic == "ld" {
                    b.load(r, base, off);
                } else {
                    b.store(r, base, off);
                }
            }
            "j" => {
                let l = get_label(&mut b, &mut labels, op(0)?);
                b.jmp(l);
            }
            "jr" => {
                let rs = parse_reg(op(0)?, line_no, raw)?;
                let table = op(1)?;
                let inner = table
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| err(line_no, "jr needs a jump table `[l1, l2]`"))?;
                let targets: Vec<Label> = inner
                    .split(',')
                    .map(str::trim)
                    .filter(|t| !t.is_empty())
                    .map(|t| get_label(&mut b, &mut labels, t))
                    .collect();
                b.jr(rs, &targets);
            }
            "call" => {
                b.call(op(0)?);
            }
            "callr" => {
                let rs = parse_reg(op(0)?, line_no, raw)?;
                b.callr(rs);
            }
            "ret" => {
                b.ret();
            }
            "halt" => {
                b.halt();
            }
            "nop" => {
                b.nop();
            }
            m => {
                if let Some(c) = cond(m) {
                    let rs = parse_reg(op(0)?, line_no, raw)?;
                    let rt = parse_reg(op(1)?, line_no, raw)?;
                    let l = get_label(&mut b, &mut labels, op(2)?);
                    b.br(c, rs, rt, l);
                } else if let Some(base) = m.strip_suffix('i').and_then(alu_op) {
                    let rd = parse_reg(op(0)?, line_no, raw)?;
                    let rs = parse_reg(op(1)?, line_no, raw)?;
                    b.alui(base, rd, rs, parse_imm(op(2)?, line_no, raw)?);
                } else if let Some(a) = alu_op(m) {
                    let rd = parse_reg(op(0)?, line_no, raw)?;
                    let rs = parse_reg(op(1)?, line_no, raw)?;
                    let rt = parse_reg(op(2)?, line_no, raw)?;
                    b.alu(a, rd, rs, rt);
                } else {
                    return Err(err_tok(line_no, raw, m, format!("unknown mnemonic `{m}`")));
                }
            }
        }
    }
    if in_fn {
        return Err(err(src.lines().count(), "unclosed `fn`"));
    }
    b.build().map_err(AsmError::from)
}

/// Renders `program` as assembly text accepted by [`parse_program`].
///
/// Control-flow targets become `L<index>` labels; initialized data is
/// emitted as one `.data` block per contiguous run, named `d<base>` —
/// instruction operands that referenced data addresses are emitted as raw
/// immediates (`li`), which round-trips exactly because the builder's
/// data layout is deterministic.
pub fn to_asm(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    // Data: contiguous runs as .data blocks (names unused by the emitted
    // code — immediates carry addresses — but make the text greppable).
    let mut data = program.initial_data().to_vec();
    data.sort_by_key(|&(a, _)| a);
    let mut i = 0;
    while i < data.len() {
        let base = data[i].0;
        let mut words = vec![data[i].1];
        let mut j = i + 1;
        while j < data.len() && data[j].0 == base + 8 * (j - i) as u64 {
            words.push(data[j].1);
            j += 1;
        }
        let list = words
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, ".data d{base:x} = [{list}]");
        i = j;
    }
    if !data.is_empty() {
        out.push('\n');
    }

    // Collect every referenced Pc as a label.
    let mut targets: Vec<Pc> = Vec::new();
    for (i, inst) in program.insts().iter().enumerate() {
        match *inst {
            Inst::Br { target, .. } | Inst::Jmp { target } => targets.push(target),
            Inst::Jr { .. } => targets.extend(program.jump_targets(Pc::new(i as u32))),
            _ => {}
        }
    }
    targets.sort();
    targets.dedup();
    let label_of: HashMap<Pc, String> = targets
        .iter()
        .map(|&pc| (pc, format!("L{}", pc.index())))
        .collect();

    for f in program.functions() {
        let _ = writeln!(out, "fn {} {{", f.name);
        for i in f.range.clone() {
            let pc = Pc::new(i);
            if let Some(l) = label_of.get(&pc) {
                let _ = writeln!(out, "{l}:");
            }
            let inst = program.inst(pc);
            let line = match inst {
                Inst::Li { rd, imm } => format!("li {rd}, {imm}"),
                Inst::Alu { op, rd, rs, rt } => format!("{op} {rd}, {rs}, {rt}"),
                Inst::AluI { op, rd, rs, imm } => format!("{op}i {rd}, {rs}, {imm}"),
                Inst::Load { rd, base, off } => format!("ld {rd}, {off}({base})"),
                Inst::Store { rs, base, off } => format!("sd {rs}, {off}({base})"),
                Inst::Br {
                    cond,
                    rs,
                    rt,
                    target,
                } => {
                    format!("b{cond} {rs}, {rt}, {}", label_of[&target])
                }
                Inst::Jmp { target } => format!("j {}", label_of[&target]),
                Inst::Jr { rs } => {
                    let table = program
                        .jump_targets(pc)
                        .iter()
                        .map(|t| label_of[t].clone())
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("jr {rs}, [{table}]")
                }
                Inst::Call { target } => {
                    let callee = program
                        .function_at(target)
                        .map(|f| f.name.clone())
                        .unwrap_or_else(|| format!("fn_{}", target.index()));
                    format!("call {callee}")
                }
                Inst::CallR { rs } => format!("callr {rs}"),
                Inst::Ret => "ret".into(),
                Inst::Halt => "halt".into(),
                Inst::Nop => "nop".into(),
            };
            let _ = writeln!(out, "    {line}");
        }
        let _ = writeln!(out, "}}");
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute_window;

    const DEMO: &str = r#"
; a loop with a hammock and a call
.data weights = [5, 7, 11]

fn main {
    la   r16, weights
    ld   r2, 0(r16)
    li   r1, 0
loop:
    andi r3, r1, 1
    beq  r3, r0, even
    addi r4, r4, 1
even:
    call bump
    addi r1, r1, 1
    blt  r1, r2, loop
    halt
}

fn bump {
    addi r5, r5, 2
    ret
}
"#;

    #[test]
    fn parses_and_executes_demo() {
        let p = parse_program(DEMO).expect("parses");
        assert_eq!(p.functions().len(), 2);
        let r = execute_window(&p, 10_000).unwrap();
        assert!(r.halted);
        // 5 iterations: r4 incremented on odd i (i = 1, 3), r5 on each.
        let mut i = crate::Interpreter::new(&p);
        i.run(10_000).unwrap();
        assert_eq!(i.reg(Reg::R4), 2);
        assert_eq!(i.reg(Reg::R5), 10);
    }

    #[test]
    fn data_blocks_resolve_by_name() {
        let p = parse_program(DEMO).unwrap();
        assert_eq!(p.initial_data().len(), 3);
        assert_eq!(p.initial_data()[2].1, 11);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let e = parse_program("fn main {\n    frob r1\n    halt\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frob"));
        assert_eq!(e.column, 5);
        assert_eq!(e.token, "frob");
        let e = parse_program("nop").unwrap_err();
        assert!(e.message.contains("outside"));
        let e = parse_program("fn main {\n halt\n").unwrap_err();
        assert!(e.message.contains("unclosed"));
    }

    #[test]
    fn bad_register_and_immediate_errors() {
        let e = parse_program("fn main {\n li r99, 0\n halt\n}").unwrap_err();
        assert!(e.message.contains("out of range"));
        assert_eq!(e.token, "r99");
        assert_eq!(e.column, 5);
        let e = parse_program("fn main {\n li r1, xyz\n halt\n}").unwrap_err();
        assert!(e.message.contains("immediate"));
        assert_eq!(e.token, "xyz");
    }

    #[test]
    fn diagnostic_renders_line_and_column() {
        // The full rendered diagnostic pinpoints the offending token.
        let e = parse_program("fn main {\n    mulq r1, r2, r3\n    halt\n}").unwrap_err();
        assert_eq!(e.to_string(), "line 2:5: unknown mnemonic `mulq`");
        // Structural errors (no single token) omit the column.
        let e = parse_program("fn main {\n halt\n").unwrap_err();
        assert_eq!(e.to_string(), "line 2: unclosed `fn`");
    }

    #[test]
    fn jr_jump_table_parses() {
        let src = r#"
fn main {
    la  r1, case1
    jr  r1, [case0, case1]
case0:
    nop
    halt
case1:
    li r2, 42
    halt
}
"#;
        let p = parse_program(src).unwrap();
        let mut i = crate::Interpreter::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.reg(Reg::R2), 42);
    }

    #[test]
    fn roundtrip_demo_program() {
        let p1 = parse_program(DEMO).unwrap();
        let text = to_asm(&p1);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("reparse: {e}\n{text}"));
        assert_eq!(p1.insts(), p2.insts());
        assert_eq!(p1.initial_data(), p2.initial_data());
        assert_eq!(p1.functions().len(), p2.functions().len());
    }

    #[test]
    fn roundtrip_every_workload_shape() {
        // The builder-generated rich program from the analysis tests:
        // reuse a generated program with every instruction kind.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let c0 = b.fresh_label("c0");
        let c1 = b.fresh_label("c1");
        let out = b.fresh_label("out");
        let tbl = b.alloc_label_table(&[c0, c1]);
        b.li(Reg::R1, tbl as i64);
        b.load(Reg::R2, Reg::R1, 0);
        b.alu(AluOp::Mul, Reg::R3, Reg::R2, Reg::R2);
        b.alui(AluOp::Sra, Reg::R3, Reg::R3, 1);
        b.store(Reg::R3, Reg::R1, 8);
        b.call("leaf");
        b.li_fn_addr(Reg::R5, "leaf");
        b.callr(Reg::R5);
        b.jr(Reg::R2, &[c0, c1]);
        b.bind_label(c0);
        b.nop();
        b.jmp(out);
        b.bind_label(c1);
        b.nop();
        b.bind_label(out);
        b.halt();
        b.end_function();
        b.begin_function("leaf");
        b.ret();
        b.end_function();
        let p1 = b.build().unwrap();

        let text = to_asm(&p1);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("reparse: {e}\n{text}"));
        assert_eq!(p1.insts(), p2.insts());
    }
}
