//! A textual assembly format: parse programs from text and render
//! programs back to parseable text.
//!
//! The format is line-based:
//!
//! ```text
//! .data table = [1, 2, 3]        ; named data block (64-bit words)
//!
//! fn main {
//!     la   r16, table            ; load a data block's address
//!     ld   r2, 0(r16)
//! loop:
//!     addi r1, r1, 1
//!     blt  r1, r2, loop
//!     call helper
//!     jr   r3, [loop, done]      ; indirect jump with its jump table
//! done:
//!     halt
//! }
//!
//! fn helper {
//!     lfa  r4, main              ; load a function's entry address
//!     ret
//! }
//! ```
//!
//! * registers are `r0`–`r31`;
//! * ALU mnemonics: `add sub and or xor sll srl sra mul slt sltu`, with an
//!   `i` suffix for the immediate form (`addi r1, r2, -3`);
//! * branches: `beq bne blt bge bgt ble rs, rt, label`;
//! * memory: `ld rd, off(base)` and `sd rs, off(base)`;
//! * `;` or `#` start comments.
//!
//! [`parse_program`] builds through [`crate::ProgramBuilder`], so all of
//! its validation applies; [`to_asm`] renders any [`Program`] into text
//! that parses back to the identical instruction sequence (see the
//! round-trip tests).

use crate::builder::{Label, ProgramBuilder};
use crate::error::BuildError;
use crate::inst::{AluOp, Cond, Inst, Reg};
use crate::program::{Pc, Program};
use std::collections::HashMap;
use std::fmt;

/// An assembly parsing error with its 1-based source position and the
/// offending token (when one exists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based column of the offending token; 0 when no single token is
    /// at fault (structural errors, builder finalization errors).
    pub column: usize,
    /// The offending token, or empty when none applies.
    pub token: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.column > 0 {
            write!(f, "line {}:{}: {}", self.line, self.column, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

impl From<BuildError> for AsmError {
    fn from(e: BuildError) -> AsmError {
        AsmError {
            line: 0,
            column: 0,
            token: String::new(),
            message: e.to_string(),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        column: 0,
        token: String::new(),
        message: message.into(),
    }
}

/// Like [`err`], but records the offending token and locates its column
/// in the raw source line (1-based; 0 if the token is not found there).
fn err_tok(line: usize, raw: &str, tok: &str, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        column: raw.find(tok).map_or(0, |i| i + 1),
        token: tok.to_string(),
        message: message.into(),
    }
}

/// A recorded source position of a token (for deferred diagnostics:
/// unbound labels and undefined callees surface at builder finalization,
/// but should point at the line that referenced them).
struct Pos {
    line: usize,
    column: usize,
    token: String,
}

impl Pos {
    fn of(line: usize, raw: &str, tok: &str) -> Pos {
        Pos {
            line,
            column: raw.find(tok).map_or(0, |i| i + 1),
            token: tok.to_string(),
        }
    }

    fn to_error(&self, message: String) -> AsmError {
        AsmError {
            line: self.line,
            column: self.column,
            token: self.token.clone(),
            message,
        }
    }
}

/// A named label's state during parsing: the builder label plus the line
/// that bound it (for duplicate-binding diagnostics).
struct LabelEntry {
    label: Label,
    bound_at: Option<usize>,
}

/// Parses an unsigned 64-bit word (decimal or `0x` hex).
fn parse_u64(tok: &str) -> Option<u64> {
    if let Some(h) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok()
    } else {
        tok.parse().ok()
    }
}

fn parse_reg(tok: &str, line: usize, raw: &str) -> Result<Reg, AsmError> {
    let idx: usize = tok
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err_tok(line, raw, tok, format!("expected register, got `{tok}`")))?;
    if idx >= Reg::COUNT {
        return Err(err_tok(
            line,
            raw,
            tok,
            format!("register index {idx} out of range"),
        ));
    }
    Ok(Reg::from_index(idx))
}

fn parse_imm(tok: &str, line: usize, raw: &str) -> Result<i64, AsmError> {
    let parse = |s: &str, radix| i64::from_str_radix(s, radix).ok();
    let v = if let Some(h) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        parse(h, 16)
    } else if let Some(h) = tok.strip_prefix("-0x") {
        parse(h, 16).map(|v| -v)
    } else {
        tok.parse().ok()
    };
    v.ok_or_else(|| err_tok(line, raw, tok, format!("expected immediate, got `{tok}`")))
}

fn alu_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "mul" => AluOp::Mul,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        _ => return None,
    })
}

fn cond(m: &str) -> Option<Cond> {
    Some(match m {
        "beq" => Cond::Eq,
        "bne" => Cond::Ne,
        "blt" => Cond::Lt,
        "bge" => Cond::Ge,
        "bgt" => Cond::Gt,
        "ble" => Cond::Le,
        _ => return None,
    })
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] for syntax errors (with the offending line) or
/// any [`BuildError`] the underlying builder reports at finalization.
pub fn parse_program(src: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    let mut labels: HashMap<String, LabelEntry> = HashMap::new();
    // First reference position per label / function name, so builder
    // finalization errors (unbound label, undefined callee) can point at
    // the referencing token instead of line 0.
    let mut label_uses: HashMap<String, Pos> = HashMap::new();
    let mut fn_uses: HashMap<String, Pos> = HashMap::new();
    let mut data_blocks: HashMap<String, u64> = HashMap::new();
    let mut in_fn = false;

    // First pass for named data sizes is unnecessary: data lines must
    // precede their first use, which the format requires by convention;
    // we simply process in order and resolve names as we go.
    let use_label = |b: &mut ProgramBuilder,
                     labels: &mut HashMap<String, LabelEntry>,
                     uses: &mut HashMap<String, Pos>,
                     name: &str,
                     line_no: usize,
                     raw: &str| {
        uses.entry(name.to_string())
            .or_insert_with(|| Pos::of(line_no, raw, name));
        labels
            .entry(name.to_string())
            .or_insert_with(|| LabelEntry {
                label: b.fresh_label(name),
                bound_at: None,
            })
            .label
    };

    for (ln, raw) in src.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        // Program name: `.program name`
        if let Some(rest) = line.strip_prefix(".program") {
            let name = rest.trim();
            if name.is_empty() {
                return Err(err(line_no, ".program needs a name"));
            }
            b.set_name(name);
            continue;
        }

        // Data: `.data name = [w, w, ...]`, optionally placed at an
        // absolute byte address: `.data name @ 0xADDR = [w, ...]`.
        if let Some(rest) = line.strip_prefix(".data") {
            let (name, list) = rest
                .split_once('=')
                .ok_or_else(|| err(line_no, ".data needs `name = [..]`"))?;
            let (name, at_addr) = match name.split_once('@') {
                Some((n, a)) => {
                    let a = a.trim();
                    let addr = parse_u64(a).ok_or_else(|| {
                        err_tok(line_no, raw, a, format!("expected data address, got `{a}`"))
                    })?;
                    (n, Some(addr))
                }
                None => (name, None),
            };
            let name = name.trim();
            let list = list.trim();
            let inner = list
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| err(line_no, "data words must be `[w, w, ...]`"))?;
            let mut words = Vec::new();
            for tok in inner.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                // Data words are full u64s; also accept negative i64s.
                match parse_u64(tok) {
                    Some(w) => words.push(w),
                    None => words.push(parse_imm(tok, line_no, raw)? as u64),
                }
            }
            let addr = match at_addr {
                Some(a) => b.alloc_data_at(a, &words),
                None => b.alloc_data(&words),
            };
            data_blocks.insert(name.to_string(), addr);
            continue;
        }

        // Function open / close.
        if let Some(rest) = line.strip_prefix("fn ") {
            let name = rest
                .strip_suffix('{')
                .ok_or_else(|| err(line_no, "expected `fn name {`"))?
                .trim();
            if in_fn {
                return Err(err(line_no, "nested `fn`"));
            }
            b.begin_function(name);
            in_fn = true;
            continue;
        }
        if line == "}" {
            if !in_fn {
                return Err(err(line_no, "unmatched `}`"));
            }
            b.end_function();
            in_fn = false;
            continue;
        }

        // Label binding.
        if let Some(name) = line.strip_suffix(':') {
            let name = name.trim();
            let entry = labels
                .entry(name.to_string())
                .or_insert_with(|| LabelEntry {
                    label: b.fresh_label(name),
                    bound_at: None,
                });
            if let Some(first) = entry.bound_at {
                return Err(err_tok(
                    line_no,
                    raw,
                    name,
                    format!("label `{name}` bound twice (first bound at line {first})"),
                ));
            }
            entry.bound_at = Some(line_no);
            b.bind_label(entry.label);
            continue;
        }

        if !in_fn {
            return Err(err(line_no, "instruction outside `fn`"));
        }

        // Instruction: mnemonic, then comma-separated operands (the
        // jump-table bracket keeps its commas).
        let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (line, ""),
        };
        let ops: Vec<String> = if let Some(i) = rest.find('[') {
            let mut v: Vec<String> = rest[..i]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            v.push(rest[i..].to_string());
            v
        } else {
            rest.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        };
        let op = |i: usize| -> Result<&str, AsmError> {
            ops.get(i)
                .map(String::as_str)
                .ok_or_else(|| err(line_no, format!("`{mnemonic}` missing operand {i}")))
        };
        // Rejects trailing garbage: every mnemonic consumes a fixed operand
        // count, and anything past it is an error at the extra token.
        let expect_ops = |n: usize| -> Result<(), AsmError> {
            match ops.get(n) {
                Some(extra) => Err(err_tok(
                    line_no,
                    raw,
                    extra,
                    format!(
                        "`{mnemonic}` takes {n} operand{}, found trailing `{extra}`",
                        if n == 1 { "" } else { "s" }
                    ),
                )),
                None => Ok(()),
            }
        };

        match mnemonic {
            "li" => {
                expect_ops(2)?;
                let rd = parse_reg(op(0)?, line_no, raw)?;
                b.li(rd, parse_imm(op(1)?, line_no, raw)?);
            }
            "la" => {
                expect_ops(2)?;
                let rd = parse_reg(op(0)?, line_no, raw)?;
                let name = op(1)?;
                if let Some(&addr) = data_blocks.get(name) {
                    b.li(rd, addr as i64);
                } else {
                    let l = use_label(&mut b, &mut labels, &mut label_uses, name, line_no, raw);
                    b.li_label_addr(rd, l);
                }
            }
            "lfa" => {
                expect_ops(2)?;
                let rd = parse_reg(op(0)?, line_no, raw)?;
                let name = op(1)?;
                fn_uses
                    .entry(name.to_string())
                    .or_insert_with(|| Pos::of(line_no, raw, name));
                b.li_fn_addr(rd, name);
            }
            "ld" | "sd" => {
                expect_ops(2)?;
                let r = parse_reg(op(0)?, line_no, raw)?;
                let mem = op(1)?;
                let (off, base) = mem
                    .split_once('(')
                    .and_then(|(o, rest)| rest.strip_suffix(')').map(|b| (o, b)))
                    .ok_or_else(|| err(line_no, "memory operand must be `off(base)`"))?;
                let off = if off.is_empty() {
                    0
                } else {
                    parse_imm(off, line_no, raw)?
                };
                let base = parse_reg(base, line_no, raw)?;
                if mnemonic == "ld" {
                    b.load(r, base, off);
                } else {
                    b.store(r, base, off);
                }
            }
            "j" => {
                expect_ops(1)?;
                let l = use_label(&mut b, &mut labels, &mut label_uses, op(0)?, line_no, raw);
                b.jmp(l);
            }
            "jr" => {
                expect_ops(2)?;
                let rs = parse_reg(op(0)?, line_no, raw)?;
                let table = op(1)?;
                let inner = table
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| err(line_no, "jr needs a jump table `[l1, l2]`"))?;
                let targets: Vec<Label> = inner
                    .split(',')
                    .map(str::trim)
                    .filter(|t| !t.is_empty())
                    .map(|t| use_label(&mut b, &mut labels, &mut label_uses, t, line_no, raw))
                    .collect();
                b.jr(rs, &targets);
            }
            "call" => {
                expect_ops(1)?;
                let name = op(0)?;
                fn_uses
                    .entry(name.to_string())
                    .or_insert_with(|| Pos::of(line_no, raw, name));
                b.call(name);
            }
            "callr" => {
                expect_ops(1)?;
                let rs = parse_reg(op(0)?, line_no, raw)?;
                b.callr(rs);
            }
            "ret" => {
                expect_ops(0)?;
                b.ret();
            }
            "halt" => {
                expect_ops(0)?;
                b.halt();
            }
            "nop" => {
                expect_ops(0)?;
                b.nop();
            }
            m => {
                if let Some(c) = cond(m) {
                    expect_ops(3)?;
                    let rs = parse_reg(op(0)?, line_no, raw)?;
                    let rt = parse_reg(op(1)?, line_no, raw)?;
                    let l = use_label(&mut b, &mut labels, &mut label_uses, op(2)?, line_no, raw);
                    b.br(c, rs, rt, l);
                } else if let Some(base) = m.strip_suffix('i').and_then(alu_op) {
                    expect_ops(3)?;
                    let rd = parse_reg(op(0)?, line_no, raw)?;
                    let rs = parse_reg(op(1)?, line_no, raw)?;
                    b.alui(base, rd, rs, parse_imm(op(2)?, line_no, raw)?);
                } else if let Some(a) = alu_op(m) {
                    expect_ops(3)?;
                    let rd = parse_reg(op(0)?, line_no, raw)?;
                    let rs = parse_reg(op(1)?, line_no, raw)?;
                    let rt = parse_reg(op(2)?, line_no, raw)?;
                    b.alu(a, rd, rs, rt);
                } else {
                    return Err(err_tok(line_no, raw, m, format!("unknown mnemonic `{m}`")));
                }
            }
        }
    }
    if in_fn {
        return Err(err(src.lines().count(), "unclosed `fn`"));
    }
    b.build().map_err(|e| {
        // Point unbound-name errors at the token that referenced the name;
        // the builder only knows it at finalization, far from the use site.
        if let BuildError::UnboundLabel { name } = &e {
            let pos = name
                .strip_prefix("function `")
                .and_then(|s| s.strip_suffix('`'))
                .and_then(|f| fn_uses.get(f))
                .or_else(|| label_uses.get(name.as_str()));
            if let Some(p) = pos {
                return p.to_error(e.to_string());
            }
        }
        AsmError::from(e)
    })
}

/// Renders `program` as assembly text accepted by [`parse_program`].
///
/// The rendering is a *round-trip identity*: reparsing the text yields a
/// `Program` equal to the input (see the round-trip tests). Control-flow
/// targets become `L<index>` labels; the name is carried by a `.program`
/// directive; initialized data is emitted as one `.data` block per
/// contiguous run, named `d<base>` and pinned to its absolute address
/// with the `@` form — instruction operands that referenced data
/// addresses are emitted as raw immediates (`li`), which round-trips
/// exactly because the addresses are explicit in the text.
pub fn to_asm(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    if program.name() != "program" {
        let _ = writeln!(out, ".program {}", program.name());
        out.push('\n');
    }

    // Data: contiguous runs as .data blocks, pinned to their addresses
    // (the builder canonicalizes data to address order, so emitting in
    // that order reparses to the identical data segment).
    let data = program.initial_data().to_vec();
    let mut i = 0;
    while i < data.len() {
        let base = data[i].0;
        let mut words = vec![data[i].1];
        let mut j = i + 1;
        while j < data.len() && data[j].0 == base + 8 * (j - i) as u64 {
            words.push(data[j].1);
            j += 1;
        }
        let list = words
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, ".data d{base:x} @ {base:#x} = [{list}]");
        i = j;
    }
    if !data.is_empty() {
        out.push('\n');
    }

    // Collect every referenced Pc as a label.
    let mut targets: Vec<Pc> = Vec::new();
    for (i, inst) in program.insts().iter().enumerate() {
        match *inst {
            Inst::Br { target, .. } | Inst::Jmp { target } => targets.push(target),
            Inst::Jr { .. } => targets.extend(program.jump_targets(Pc::new(i as u32))),
            _ => {}
        }
    }
    targets.sort();
    targets.dedup();
    let label_of: HashMap<Pc, String> = targets
        .iter()
        .map(|&pc| (pc, format!("L{}", pc.index())))
        .collect();

    for f in program.functions() {
        let _ = writeln!(out, "fn {} {{", f.name);
        for i in f.range.clone() {
            let pc = Pc::new(i);
            if let Some(l) = label_of.get(&pc) {
                let _ = writeln!(out, "{l}:");
            }
            let inst = program.inst(pc);
            let line = match inst {
                Inst::Li { rd, imm } => format!("li {rd}, {imm}"),
                Inst::Alu { op, rd, rs, rt } => format!("{op} {rd}, {rs}, {rt}"),
                Inst::AluI { op, rd, rs, imm } => format!("{op}i {rd}, {rs}, {imm}"),
                Inst::Load { rd, base, off } => format!("ld {rd}, {off}({base})"),
                Inst::Store { rs, base, off } => format!("sd {rs}, {off}({base})"),
                Inst::Br {
                    cond,
                    rs,
                    rt,
                    target,
                } => {
                    format!("b{cond} {rs}, {rt}, {}", label_of[&target])
                }
                Inst::Jmp { target } => format!("j {}", label_of[&target]),
                Inst::Jr { rs } => {
                    let table = program
                        .jump_targets(pc)
                        .iter()
                        .map(|t| label_of[t].clone())
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("jr {rs}, [{table}]")
                }
                Inst::Call { target } => {
                    let callee = program
                        .function_at(target)
                        .map(|f| f.name.clone())
                        .unwrap_or_else(|| format!("fn_{}", target.index()));
                    format!("call {callee}")
                }
                Inst::CallR { rs } => format!("callr {rs}"),
                Inst::Ret => "ret".into(),
                Inst::Halt => "halt".into(),
                Inst::Nop => "nop".into(),
            };
            let _ = writeln!(out, "    {line}");
        }
        let _ = writeln!(out, "}}");
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute_window;

    const DEMO: &str = r#"
; a loop with a hammock and a call
.data weights = [5, 7, 11]

fn main {
    la   r16, weights
    ld   r2, 0(r16)
    li   r1, 0
loop:
    andi r3, r1, 1
    beq  r3, r0, even
    addi r4, r4, 1
even:
    call bump
    addi r1, r1, 1
    blt  r1, r2, loop
    halt
}

fn bump {
    addi r5, r5, 2
    ret
}
"#;

    #[test]
    fn parses_and_executes_demo() {
        let p = parse_program(DEMO).expect("parses");
        assert_eq!(p.functions().len(), 2);
        let r = execute_window(&p, 10_000).unwrap();
        assert!(r.halted);
        // 5 iterations: r4 incremented on odd i (i = 1, 3), r5 on each.
        let mut i = crate::Interpreter::new(&p);
        i.run(10_000).unwrap();
        assert_eq!(i.reg(Reg::R4), 2);
        assert_eq!(i.reg(Reg::R5), 10);
    }

    #[test]
    fn data_blocks_resolve_by_name() {
        let p = parse_program(DEMO).unwrap();
        assert_eq!(p.initial_data().len(), 3);
        assert_eq!(p.initial_data()[2].1, 11);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let e = parse_program("fn main {\n    frob r1\n    halt\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frob"));
        assert_eq!(e.column, 5);
        assert_eq!(e.token, "frob");
        let e = parse_program("nop").unwrap_err();
        assert!(e.message.contains("outside"));
        let e = parse_program("fn main {\n halt\n").unwrap_err();
        assert!(e.message.contains("unclosed"));
    }

    #[test]
    fn bad_register_and_immediate_errors() {
        let e = parse_program("fn main {\n li r99, 0\n halt\n}").unwrap_err();
        assert!(e.message.contains("out of range"));
        assert_eq!(e.token, "r99");
        assert_eq!(e.column, 5);
        let e = parse_program("fn main {\n li r1, xyz\n halt\n}").unwrap_err();
        assert!(e.message.contains("immediate"));
        assert_eq!(e.token, "xyz");
    }

    #[test]
    fn diagnostic_renders_line_and_column() {
        // The full rendered diagnostic pinpoints the offending token.
        let e = parse_program("fn main {\n    mulq r1, r2, r3\n    halt\n}").unwrap_err();
        assert_eq!(e.to_string(), "line 2:5: unknown mnemonic `mulq`");
        // Structural errors (no single token) omit the column.
        let e = parse_program("fn main {\n halt\n").unwrap_err();
        assert_eq!(e.to_string(), "line 2: unclosed `fn`");
    }

    #[test]
    fn jr_jump_table_parses() {
        let src = r#"
fn main {
    la  r1, case1
    jr  r1, [case0, case1]
case0:
    nop
    halt
case1:
    li r2, 42
    halt
}
"#;
        let p = parse_program(src).unwrap();
        let mut i = crate::Interpreter::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.reg(Reg::R2), 42);
    }

    #[test]
    fn roundtrip_demo_program() {
        let p1 = parse_program(DEMO).unwrap();
        let text = to_asm(&p1);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("reparse: {e}\n{text}"));
        assert_eq!(p1, p2);
    }

    #[test]
    fn roundtrip_preserves_program_name() {
        // Regression: `to_asm` used to drop the program name, so any
        // named program reparsed as `"program"`.
        let mut b = ProgramBuilder::named("twolf");
        b.begin_function("main");
        b.halt();
        b.end_function();
        let p1 = b.build().unwrap();
        let text = to_asm(&p1);
        assert!(text.starts_with(".program twolf\n"), "{text}");
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p2.name(), "twolf");
        assert_eq!(p1, p2);
    }

    #[test]
    fn roundtrip_preserves_gapped_data_addresses() {
        // Regression: `to_asm` emitted data blocks without addresses and
        // `parse_program` re-allocated them sequentially from the data
        // base, so any gap (zeroed scratch between initialized runs, or
        // an absolute `push_initialized_word`) shifted every later block
        // while the code still referenced the original addresses.
        let mut b = ProgramBuilder::new();
        let tbl = b.alloc_data(&[3, 5]);
        let _scratch = b.alloc_zeroed(4); // uninitialized gap
        let far = b.alloc_data(&[7]);
        b.push_initialized_word(0x20_000, 99); // out-of-order absolute word
        b.begin_function("main");
        b.li(Reg::R1, tbl as i64);
        b.li(Reg::R2, far as i64);
        b.halt();
        b.end_function();
        let p1 = b.build().unwrap();
        let text = to_asm(&p1);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("reparse: {e}\n{text}"));
        assert_eq!(p1, p2);
        // The far block really is beyond the gap, not re-packed.
        assert!(p2.initial_data().iter().any(|&(a, v)| a == far && v == 7));
        assert!(p2.initial_data().contains(&(0x20_000, 99)));
    }

    #[test]
    fn explicit_data_address_reserves_the_range() {
        // A later address-less `.data` must not overlap an explicitly
        // placed block.
        let src = "\
.data a @ 0x10020 = [1, 2]
.data b = [3]

fn main {
    halt
}
";
        let p = parse_program(src).unwrap();
        let b_addr = p
            .initial_data()
            .iter()
            .find(|&&(_, v)| v == 3)
            .map(|&(a, _)| a)
            .unwrap();
        assert!(b_addr >= 0x10020 + 16, "b at {b_addr:#x} overlaps a");
    }

    #[test]
    fn duplicate_label_is_a_positioned_error_not_a_panic() {
        // Regression: a duplicate binding hit the builder's
        // `bind_label` assertion and panicked instead of erroring.
        let e = parse_program("fn main {\nloop:\n    nop\nloop:\n    halt\n}").unwrap_err();
        assert_eq!(e.line, 4);
        assert_eq!(e.column, 1);
        assert_eq!(e.token, "loop");
        assert!(e.message.contains("bound twice"), "{e}");
        assert!(e.message.contains("line 2"), "{e}");
    }

    #[test]
    fn unbound_label_error_points_at_the_reference() {
        // Regression: unbound labels surfaced at builder finalization as
        // `line 0` errors with no token.
        let e = parse_program("fn main {\n    j nowhere\n    halt\n}").unwrap_err();
        assert_eq!((e.line, e.column), (2, 7));
        assert_eq!(e.token, "nowhere");
        let e = parse_program("fn main {\n    call missing\n    halt\n}").unwrap_err();
        assert_eq!((e.line, e.column), (2, 10));
        assert_eq!(e.token, "missing");
    }

    #[test]
    fn trailing_operands_are_rejected_at_the_extra_token() {
        // Regression: extra operands after a complete instruction were
        // silently ignored.
        let e = parse_program("fn main {\n    li r1, 5, r9\n    halt\n}").unwrap_err();
        assert_eq!((e.line, e.column), (2, 15));
        assert_eq!(e.token, "r9");
        assert!(e.message.contains("trailing"), "{e}");
        let e = parse_program("fn main {\n    halt r1\n}").unwrap_err();
        assert_eq!(e.token, "r1");
    }

    #[test]
    fn roundtrip_every_workload_shape() {
        // The builder-generated rich program from the analysis tests:
        // reuse a generated program with every instruction kind.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let c0 = b.fresh_label("c0");
        let c1 = b.fresh_label("c1");
        let out = b.fresh_label("out");
        let tbl = b.alloc_label_table(&[c0, c1]);
        b.li(Reg::R1, tbl as i64);
        b.load(Reg::R2, Reg::R1, 0);
        b.alu(AluOp::Mul, Reg::R3, Reg::R2, Reg::R2);
        b.alui(AluOp::Sra, Reg::R3, Reg::R3, 1);
        b.store(Reg::R3, Reg::R1, 8);
        b.call("leaf");
        b.li_fn_addr(Reg::R5, "leaf");
        b.callr(Reg::R5);
        b.jr(Reg::R2, &[c0, c1]);
        b.bind_label(c0);
        b.nop();
        b.jmp(out);
        b.bind_label(c1);
        b.nop();
        b.bind_label(out);
        b.halt();
        b.end_function();
        b.begin_function("leaf");
        b.ret();
        b.end_function();
        let p1 = b.build().unwrap();

        let text = to_asm(&p1);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("reparse: {e}\n{text}"));
        assert_eq!(p1, p2);
    }
}
