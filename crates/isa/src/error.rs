//! Error types for program construction and execution.

use crate::program::Pc;
use std::fmt;

/// An error detected while building a [`crate::Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound.
    UnboundLabel {
        /// The label's debug name.
        name: String,
    },
    /// A label was bound twice.
    DuplicateLabel {
        /// The label's debug name.
        name: String,
    },
    /// Two functions share a name.
    DuplicateFunction {
        /// The duplicated function name.
        name: String,
    },
    /// An instruction was emitted outside any function.
    InstOutsideFunction {
        /// Location of the offending instruction.
        pc: Pc,
    },
    /// `begin_function` was called while a function was still open.
    NestedFunction {
        /// Name of the function being opened.
        name: String,
    },
    /// `end_function` / `build` was called with no open function.
    NoOpenFunction,
    /// A function has no instructions.
    EmptyFunction {
        /// The empty function's name.
        name: String,
    },
    /// A control transfer targets a `Pc` outside the program.
    TargetOutOfRange {
        /// The site of the control transfer.
        at: Pc,
        /// The invalid target.
        target: Pc,
    },
    /// A jump table was registered for a `Pc` that is not an indirect jump.
    JumpTableNotIndirect {
        /// The offending `Pc`.
        at: Pc,
    },
    /// An indirect jump has no registered targets.
    MissingJumpTable {
        /// The `Pc` of the indirect jump.
        at: Pc,
    },
    /// A function falls through its end without a terminator.
    MissingTerminator {
        /// The function that falls off its end.
        function: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel { name } => write!(f, "label `{name}` was never bound"),
            BuildError::DuplicateLabel { name } => write!(f, "label `{name}` bound twice"),
            BuildError::DuplicateFunction { name } => {
                write!(f, "function `{name}` defined twice")
            }
            BuildError::InstOutsideFunction { pc } => {
                write!(f, "instruction at {pc} emitted outside any function")
            }
            BuildError::NestedFunction { name } => {
                write!(f, "begin_function(`{name}`) while another function is open")
            }
            BuildError::NoOpenFunction => write!(f, "no function is open"),
            BuildError::EmptyFunction { name } => write!(f, "function `{name}` is empty"),
            BuildError::TargetOutOfRange { at, target } => {
                write!(f, "control transfer at {at} targets out-of-range {target}")
            }
            BuildError::JumpTableNotIndirect { at } => {
                write!(
                    f,
                    "jump table registered at {at}, which is not an indirect jump"
                )
            }
            BuildError::MissingJumpTable { at } => {
                write!(f, "indirect jump at {at} has no registered targets")
            }
            BuildError::MissingTerminator { function } => {
                write!(
                    f,
                    "function `{function}` falls through its final instruction"
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// An error raised during functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program counter left the program text.
    PcOutOfRange {
        /// The invalid `Pc`.
        pc: Pc,
    },
    /// An indirect jump produced a target that is not a valid `Pc`.
    BadIndirectTarget {
        /// The site of the indirect jump.
        at: Pc,
        /// The register value that failed to decode.
        value: u64,
    },
    /// The step budget was exhausted before `halt`.
    StepLimitExceeded {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// A load or store touched an address beyond the configured
    /// address-space limit ([`crate::Interpreter::set_address_limit`]).
    MemoryFault {
        /// The faulting instruction.
        at: Pc,
        /// The out-of-bounds effective address.
        addr: u64,
        /// The configured address-space limit.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range"),
            ExecError::BadIndirectTarget { at, value } => {
                write!(f, "indirect jump at {at} to invalid address {value:#x}")
            }
            ExecError::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} exceeded before halt")
            }
            ExecError::MemoryFault { at, addr, limit } => {
                write!(
                    f,
                    "memory fault at {at}: address {addr:#x} beyond limit {limit:#x}"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// The unified interpreter-facing error taxonomy: everything that can go
/// wrong between source text and a finished execution, for callers that
/// want one `Result` type across both phases (the fault-injection harness
/// and [`crate::Interpreter`] front-ends).
///
/// [`BuildError`] and [`ExecError`] convert into this type losslessly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The program itself is malformed (assembly/builder rejection).
    MalformedProgram(BuildError),
    /// Instruction fetch left the program text.
    FetchOutOfRange {
        /// The invalid `Pc`.
        pc: Pc,
    },
    /// An indirect control transfer decoded to a non-`Pc` value.
    BadIndirectTarget {
        /// The site of the indirect transfer.
        at: Pc,
        /// The register value that failed to decode.
        value: u64,
    },
    /// A data access left the configured address space.
    MemoryFault {
        /// The faulting instruction.
        at: Pc,
        /// The out-of-bounds effective address.
        addr: u64,
        /// The configured address-space limit.
        limit: u64,
    },
    /// A resource budget (the step limit) was exhausted before `halt`.
    ResourceExhaustion {
        /// The budget that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::MalformedProgram(e) => write!(f, "malformed program: {e}"),
            InterpError::FetchOutOfRange { pc } => write!(f, "fetch out of range: pc {pc}"),
            InterpError::BadIndirectTarget { at, value } => {
                write!(f, "indirect jump at {at} to invalid address {value:#x}")
            }
            InterpError::MemoryFault { at, addr, limit } => {
                write!(
                    f,
                    "memory fault at {at}: address {addr:#x} beyond limit {limit:#x}"
                )
            }
            InterpError::ResourceExhaustion { limit } => {
                write!(f, "resource exhaustion: step limit {limit} before halt")
            }
        }
    }
}

impl std::error::Error for InterpError {}

impl From<BuildError> for InterpError {
    fn from(e: BuildError) -> InterpError {
        InterpError::MalformedProgram(e)
    }
}

impl From<ExecError> for InterpError {
    fn from(e: ExecError) -> InterpError {
        match e {
            ExecError::PcOutOfRange { pc } => InterpError::FetchOutOfRange { pc },
            ExecError::BadIndirectTarget { at, value } => {
                InterpError::BadIndirectTarget { at, value }
            }
            ExecError::StepLimitExceeded { limit } => InterpError::ResourceExhaustion { limit },
            ExecError::MemoryFault { at, addr, limit } => {
                InterpError::MemoryFault { at, addr, limit }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BuildError::UnboundLabel { name: "x".into() };
        assert_eq!(e.to_string(), "label `x` was never bound");
        let e = ExecError::StepLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
        let e = ExecError::BadIndirectTarget {
            at: Pc::new(1),
            value: 3,
        };
        assert!(e.to_string().contains("0x3"));
    }

    #[test]
    fn interp_error_conversions_preserve_detail() {
        let e: InterpError = BuildError::NoOpenFunction.into();
        assert!(matches!(e, InterpError::MalformedProgram(_)));
        assert!(e.to_string().contains("malformed program"));

        let e: InterpError = ExecError::PcOutOfRange { pc: Pc::new(7) }.into();
        assert!(matches!(e, InterpError::FetchOutOfRange { .. }));

        let e: InterpError = ExecError::StepLimitExceeded { limit: 9 }.into();
        assert_eq!(e, InterpError::ResourceExhaustion { limit: 9 });

        let e: InterpError = ExecError::MemoryFault {
            at: Pc::new(2),
            addr: 0x1000,
            limit: 0x100,
        }
        .into();
        assert!(e.to_string().contains("0x1000"));
    }
}
