//! Functional (architectural) interpreter.

use crate::error::ExecError;
use crate::inst::{Inst, Reg};
use crate::memory::Memory;
use crate::program::{Pc, Program};
use crate::trace::{Trace, TraceEntry};

/// The outcome of a [`Interpreter::run`] call.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// The retired-instruction trace.
    pub trace: Trace,
    /// True if the program executed a `halt`.
    pub halted: bool,
    /// Instructions retired.
    pub steps: u64,
}

/// Executes a [`Program`] architecturally, producing a retirement [`Trace`].
///
/// This is the paper's "architectural simulator" used to check the timing
/// model (§3.2); in our trace-driven design it additionally *produces* the
/// trace the timing model replays.
///
/// # Example
///
/// ```
/// use polyflow_isa::{ProgramBuilder, Interpreter, Reg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// b.begin_function("main");
/// b.li(Reg::R1, 7);
/// b.halt();
/// b.end_function();
/// let p = b.build()?;
/// let mut interp = Interpreter::new(&p);
/// let r = interp.run(10)?;
/// assert!(r.halted);
/// assert_eq!(interp.reg(Reg::R1), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter<'p> {
    program: &'p Program,
    regs: [u64; Reg::COUNT],
    memory: Memory,
    pc: Pc,
    halted: bool,
    /// Exclusive upper bound on data addresses, if enforced.
    address_limit: Option<u64>,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter at the program entry with initial data loaded.
    pub fn new(program: &'p Program) -> Interpreter<'p> {
        let mut memory = Memory::new();
        for &(addr, value) in program.initial_data() {
            memory.write(addr, value);
        }
        let mut regs = [0u64; Reg::COUNT];
        // Conventional stack pointer: top of a region far above the data
        // segment, growing down.
        regs[Reg::SP.index()] = 0x8000_0000;
        Interpreter {
            program,
            regs,
            memory,
            pc: program.entry(),
            halted: false,
            address_limit: None,
        }
    }

    /// Enforces an (exclusive) upper bound on load/store effective
    /// addresses: any access at or beyond `limit` raises
    /// [`ExecError::MemoryFault`]. The default is an unbounded sparse
    /// address space (the seed behavior). The limit must leave room for
    /// the conventional stack at `0x8000_0000` on programs that use it.
    pub fn set_address_limit(&mut self, limit: Option<u64>) {
        self.address_limit = limit;
    }

    /// Checks `addr` against the configured address-space limit.
    fn check_addr(&self, at: Pc, addr: u64) -> Result<(), ExecError> {
        match self.address_limit {
            Some(limit) if addr >= limit => Err(ExecError::MemoryFault { at, addr, limit }),
            _ => Ok(()),
        }
    }

    /// Current value of a register.
    pub fn reg(&self, r: Reg) -> u64 {
        if r == Reg::R0 {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Sets a register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r != Reg::R0 {
            self.regs[r.index()] = v;
        }
    }

    /// The data memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to the data memory (e.g. to poke inputs before a run).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// The current program counter.
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// True once a `halt` has retired.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Executes one instruction and returns its trace entry.
    ///
    /// # Errors
    ///
    /// Fails if the `pc` leaves the program or an indirect jump decodes to
    /// an invalid address. Returns `Ok(None)` if already halted.
    pub fn step(&mut self) -> Result<Option<TraceEntry>, ExecError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = self.program.get(pc).ok_or(ExecError::PcOutOfRange { pc })?;

        let mut taken = false;
        let mut mem_addr = None;
        let fallthrough = pc.next();
        let next_pc = match inst {
            Inst::Li { rd, imm } => {
                self.set_reg(rd, imm as u64);
                fallthrough
            }
            Inst::Alu { op, rd, rs, rt } => {
                let v = op.apply(self.reg(rs), self.reg(rt));
                self.set_reg(rd, v);
                fallthrough
            }
            Inst::AluI { op, rd, rs, imm } => {
                let v = op.apply(self.reg(rs), imm as u64);
                self.set_reg(rd, v);
                fallthrough
            }
            Inst::Load { rd, base, off } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                self.check_addr(pc, addr)?;
                mem_addr = Some(addr);
                let v = self.memory.read(addr);
                self.set_reg(rd, v);
                fallthrough
            }
            Inst::Store { rs, base, off } => {
                let addr = self.reg(base).wrapping_add(off as u64);
                self.check_addr(pc, addr)?;
                mem_addr = Some(addr);
                self.memory.write(addr, self.reg(rs));
                fallthrough
            }
            Inst::Br {
                cond,
                rs,
                rt,
                target,
            } => {
                taken = cond.eval(self.reg(rs), self.reg(rt));
                if taken {
                    target
                } else {
                    fallthrough
                }
            }
            Inst::Jmp { target } => {
                taken = true;
                target
            }
            Inst::Jr { rs } => {
                taken = true;
                let v = self.reg(rs);
                Pc::from_value(v).ok_or(ExecError::BadIndirectTarget { at: pc, value: v })?
            }
            Inst::Call { target } => {
                taken = true;
                self.set_reg(Reg::RA, fallthrough.to_value());
                target
            }
            Inst::CallR { rs } => {
                taken = true;
                let v = self.reg(rs);
                let t =
                    Pc::from_value(v).ok_or(ExecError::BadIndirectTarget { at: pc, value: v })?;
                self.set_reg(Reg::RA, fallthrough.to_value());
                t
            }
            Inst::Ret => {
                taken = true;
                let v = self.reg(Reg::RA);
                Pc::from_value(v).ok_or(ExecError::BadIndirectTarget { at: pc, value: v })?
            }
            Inst::Halt => {
                self.halted = true;
                pc
            }
            Inst::Nop => fallthrough,
        };

        if !self.halted {
            if next_pc.index() >= self.program.len() {
                return Err(ExecError::PcOutOfRange { pc: next_pc });
            }
            self.pc = next_pc;
        }

        Ok(Some(TraceEntry {
            pc,
            inst,
            taken,
            next_pc,
            mem_addr,
        }))
    }

    /// Runs until `halt` or until `max_steps` instructions retire.
    ///
    /// # Errors
    ///
    /// Fails on invalid control flow or if the step budget is exhausted
    /// before the program halts.
    pub fn run(&mut self, max_steps: u64) -> Result<ExecResult, ExecError> {
        let mut trace = Trace::new();
        let mut steps = 0;
        while steps < max_steps {
            match self.step()? {
                Some(e) => {
                    trace.push(e);
                    steps += 1;
                    if self.halted {
                        return Ok(ExecResult {
                            trace,
                            halted: true,
                            steps,
                        });
                    }
                }
                None => {
                    return Ok(ExecResult {
                        trace,
                        halted: true,
                        steps,
                    })
                }
            }
        }
        Err(ExecError::StepLimitExceeded { limit: max_steps })
    }
}

/// Executes `program` for at most `window` instructions, returning the trace
/// whether or not the program halted.
///
/// This is the main entry point used by the workloads and the simulator: it
/// mirrors the paper's fixed 100M-instruction simulation windows (§3.2).
///
/// # Errors
///
/// Fails only on invalid control flow (never on budget exhaustion).
pub fn execute_window(program: &Program, window: u64) -> Result<ExecResult, ExecError> {
    let mut interp = Interpreter::new(program);
    let mut trace = Trace::new();
    let mut steps = 0;
    while steps < window {
        match interp.step()? {
            Some(e) => {
                trace.push(e);
                steps += 1;
                if interp.is_halted() {
                    break;
                }
            }
            None => break,
        }
    }
    Ok(ExecResult {
        trace,
        halted: interp.is_halted(),
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{AluOp, Cond};

    fn simple_loop() -> Program {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let top = b.fresh_label("top");
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 0);
        b.bind_label(top);
        b.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
        b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
        b.br_imm(Cond::Lt, Reg::R2, 10, top);
        b.halt();
        b.end_function();
        b.build().unwrap()
    }

    #[test]
    fn loop_sums_correctly() {
        let p = simple_loop();
        let mut i = Interpreter::new(&p);
        let r = i.run(1000).unwrap();
        assert!(r.halted);
        assert_eq!(i.reg(Reg::R1), 45);
        assert_eq!(r.steps as usize, r.trace.len());
    }

    #[test]
    fn address_limit_raises_memory_fault() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.li(Reg::R1, 0x4000);
        b.store(Reg::R2, Reg::R1, 0);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        // Unlimited (default): the store succeeds.
        let mut i = Interpreter::new(&p);
        assert!(i.run(10).unwrap().halted);
        // Limited below the effective address: a typed memory fault.
        let mut i = Interpreter::new(&p);
        i.set_address_limit(Some(0x1000));
        let err = i.run(10).unwrap_err();
        assert_eq!(
            err,
            ExecError::MemoryFault {
                at: Pc::new(1),
                addr: 0x4000,
                limit: 0x1000,
            }
        );
        // A limit above the address does not fire.
        let mut i = Interpreter::new(&p);
        i.set_address_limit(Some(0x10000));
        assert!(i.run(10).unwrap().halted);
    }

    #[test]
    fn step_limit_errors() {
        let p = simple_loop();
        let mut i = Interpreter::new(&p);
        assert!(matches!(
            i.run(3),
            Err(ExecError::StepLimitExceeded { limit: 3 })
        ));
    }

    #[test]
    fn execute_window_truncates_gracefully() {
        let p = simple_loop();
        let r = execute_window(&p, 5).unwrap();
        assert!(!r.halted);
        assert_eq!(r.trace.len(), 5);
        let r = execute_window(&p, 100_000).unwrap();
        assert!(r.halted);
    }

    #[test]
    fn call_and_ret() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.li(Reg::R1, 5);
        b.call("double");
        b.halt();
        b.end_function();
        b.begin_function("double");
        b.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R1);
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p);
        let r = i.run(100).unwrap();
        assert!(r.halted);
        assert_eq!(i.reg(Reg::R1), 10);
        // Trace visits: li, call, add, ret, halt.
        assert_eq!(r.trace.len(), 5);
        assert_eq!(
            r.trace.entry(1).next_pc,
            p.function("double").unwrap().entry()
        );
    }

    #[test]
    fn nested_calls_with_stack() {
        // main calls f, f saves RA on stack and calls g, then returns.
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.call("f");
        b.halt();
        b.end_function();
        b.begin_function("f");
        b.alui(AluOp::Add, Reg::SP, Reg::SP, -8);
        b.store(Reg::RA, Reg::SP, 0);
        b.call("g");
        b.load(Reg::RA, Reg::SP, 0);
        b.alui(AluOp::Add, Reg::SP, Reg::SP, 8);
        b.ret();
        b.end_function();
        b.begin_function("g");
        b.li(Reg::R9, 99);
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p);
        let r = i.run(100).unwrap();
        assert!(r.halted);
        assert_eq!(i.reg(Reg::R9), 99);
    }

    #[test]
    fn memory_and_data_segment() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let base = b.alloc_data(&[11, 22]);
        b.li(Reg::R1, base as i64);
        b.load(Reg::R2, Reg::R1, 0);
        b.load(Reg::R3, Reg::R1, 8);
        b.alu(AluOp::Add, Reg::R4, Reg::R2, Reg::R3);
        b.store(Reg::R4, Reg::R1, 16);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.reg(Reg::R4), 33);
        assert_eq!(i.memory().read(base + 16), 33);
    }

    #[test]
    fn branch_trace_records_direction() {
        let p = simple_loop();
        let r = execute_window(&p, 10_000).unwrap();
        let branches: Vec<_> = r.trace.iter().filter(|e| e.inst.is_cond_branch()).collect();
        assert_eq!(branches.len(), 10);
        assert!(branches[..9].iter().all(|e| e.taken));
        assert!(!branches[9].taken);
    }

    #[test]
    fn indirect_jump_dispatch() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let case0 = b.fresh_label("case0");
        let case1 = b.fresh_label("case1");
        let out = b.fresh_label("out");
        let tbl = b.alloc_label_table(&[case0, case1]);
        b.li(Reg::R1, 1); // select case 1
        b.alui(AluOp::Sll, Reg::R2, Reg::R1, 3);
        b.li(Reg::R3, tbl as i64);
        b.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R2);
        b.load(Reg::R4, Reg::R3, 0);
        b.jr(Reg::R4, &[case0, case1]);
        b.bind_label(case0);
        b.li(Reg::R5, 100);
        b.jmp(out);
        b.bind_label(case1);
        b.li(Reg::R5, 200);
        b.jmp(out);
        b.bind_label(out);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p);
        i.run(100).unwrap();
        assert_eq!(i.reg(Reg::R5), 200);
    }

    #[test]
    fn bad_indirect_target_errors() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let l = b.fresh_label("l");
        b.li(Reg::R1, 3); // not 4-aligned
        b.jr(Reg::R1, &[l]);
        b.bind_label(l);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p);
        assert!(matches!(
            i.run(10),
            Err(ExecError::BadIndirectTarget { .. })
        ));
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.li(Reg::R0, 77);
        b.alu(AluOp::Add, Reg::R1, Reg::R0, Reg::R0);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let mut i = Interpreter::new(&p);
        i.run(10).unwrap();
        assert_eq!(i.reg(Reg::R0), 0);
        assert_eq!(i.reg(Reg::R1), 0);
    }

    #[test]
    fn trace_halt_entry_is_last() {
        let p = simple_loop();
        let r = execute_window(&p, 10_000).unwrap();
        let last = r.trace.entry(r.trace.len() - 1);
        assert_eq!(last.inst, Inst::Halt);
    }
}
