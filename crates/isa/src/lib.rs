//! A small 64-bit RISC instruction set, program representation, and
//! functional interpreter.
//!
//! This crate is the substrate of the PolyFlow reproduction (Agarwal et al.,
//! *Exploiting Postdominance for Speculative Parallelization*, HPCA 2007).
//! The paper evaluates on a 64-bit MIPS variant; we define a comparable
//! register-register ISA with:
//!
//! * 32 general-purpose 64-bit registers ([`Reg`], with `r0` hardwired to 0
//!   and `r31` as the link register),
//! * ALU, load/store, conditional branch, direct/indirect jump, call/return
//!   and halt instructions ([`Inst`]),
//! * a [`Program`] container with function boundaries, labels and
//!   jump-table metadata (needed by the CFG layer to resolve indirect
//!   jumps), and
//! * a functional [`Interpreter`] that executes programs and emits a
//!   retired-instruction [`Trace`] consumed by the timing simulator and the
//!   reconvergence predictor.
//!
//! # Example
//!
//! ```
//! use polyflow_isa::{ProgramBuilder, Reg, Cond, AluOp, Interpreter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! b.begin_function("sum_to_ten");
//! let loop_top = b.fresh_label("loop");
//! let done = b.fresh_label("done");
//! b.li(Reg::R1, 0);            // acc
//! b.li(Reg::R2, 0);            // i
//! b.bind_label(loop_top);
//! b.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
//! b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
//! b.br_imm(Cond::Lt, Reg::R2, 10, loop_top);
//! b.bind_label(done);
//! b.halt();
//! b.end_function();
//! let program = b.build()?;
//!
//! let mut interp = Interpreter::new(&program);
//! let result = interp.run(1_000)?;
//! assert!(result.halted);
//! assert_eq!(interp.reg(Reg::R1), 45);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Robustness: library code may not `unwrap()` — fallible paths return the
// typed errors in `error.rs`. Tests may (a failed unwrap is the assert).
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod asm;
mod builder;
mod error;
mod inst;
mod interp;
mod memory;
mod program;
pub mod rng;
mod trace;

pub use asm::{parse_program, to_asm, AsmError};
pub use builder::{Label, ProgramBuilder};
pub use error::{BuildError, ExecError, InterpError};
pub use inst::{AluOp, Cond, Inst, InstClass, Reg};
pub use interp::{execute_window, ExecResult, Interpreter};
pub use memory::Memory;
pub use program::{Function, Pc, Program};
pub use trace::{Dataflow, PcIndex, Trace, TraceEntry, TraceError};
