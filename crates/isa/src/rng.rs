//! Small deterministic pseudo-random generators for tests and workload
//! generation.
//!
//! The workspace builds hermetically (no external crates), so randomized
//! tests cannot use `rand`/`proptest`. [`SplitMix64`] is the standard
//! 64-bit mixer of Steele, Lea and Flood — a full-period generator with
//! excellent statistical quality for its size — and is deterministic by
//! construction: every test names its seed, so failures reproduce exactly.

/// A seeded splitmix64 generator.
///
/// # Example
///
/// ```
/// use polyflow_isa::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// assert_ne!(a.next_u64(), a.next_u64()); // but not constant
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub const fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift bounded mapping (Lemire); bias is < 2^-64 * bound,
        // negligible for test-sized bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniform value in the inclusive-exclusive range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below((hi - lo) as u64) as i64)
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SplitMix64::new(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 1234567 from the published splitmix64.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let i = r.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
        }
        assert!(r.index(3) < 3);
    }

    #[test]
    fn flip_hits_both_sides() {
        let mut r = SplitMix64::new(3);
        let heads = (0..100).filter(|_| r.flip()).count();
        assert!(heads > 20 && heads < 80, "{heads}");
    }
}
