//! Instruction and register definitions.

use crate::program::Pc;
use std::fmt;

/// A general-purpose register.
///
/// The machine has 32 architectural registers. `R0` is hardwired to zero
/// (writes are discarded), matching MIPS convention. `R31` is the link
/// register written by [`Inst::Call`] and read by [`Inst::Ret`]. `R29` is
/// used as the stack pointer by the program-builder conventions in
/// `polyflow-workloads`, but the hardware attaches no special meaning to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    R16,
    R17,
    R18,
    R19,
    R20,
    R21,
    R22,
    R23,
    R24,
    R25,
    R26,
    R27,
    R28,
    R29,
    R30,
    R31,
}

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// The stack-pointer register by software convention.
    pub const SP: Reg = Reg::R29;
    /// The link register written by `Call`.
    pub const RA: Reg = Reg::R31;

    /// Returns the register with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn from_index(idx: usize) -> Reg {
        Self::ALL[idx]
    }

    /// The index of this register in the register file (0..32).
    pub fn index(self) -> usize {
        self as usize
    }

    /// All registers, in index order.
    pub const ALL: [Reg; 32] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
        Reg::R16,
        Reg::R17,
        Reg::R18,
        Reg::R19,
        Reg::R20,
        Reg::R21,
        Reg::R22,
        Reg::R23,
        Reg::R24,
        Reg::R25,
        Reg::R26,
        Reg::R27,
        Reg::R28,
        Reg::R29,
        Reg::R30,
        Reg::R31,
    ];
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Arithmetic / logic operations for [`Inst::Alu`] and [`Inst::AluI`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Sll,
    /// Logical shift right (shift amount masked to 6 bits).
    Srl,
    /// Arithmetic shift right (shift amount masked to 6 bits).
    Sra,
    /// Wrapping multiplication (long latency in the timing model).
    Mul,
    /// Set if less than, signed (`rd = (rs < rt) as u64`).
    Slt,
    /// Set if less than, unsigned.
    Sltu,
}

impl AluOp {
    /// Applies the operation to two 64-bit values.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => a.wrapping_shr((b & 63) as u32),
            AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
        }
    }

    /// True for long-latency operations (multiply).
    pub fn is_long_latency(self) -> bool {
        matches!(self, AluOp::Mul)
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Mul => "mul",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        };
        f.write_str(s)
    }
}

/// Branch conditions comparing two registers (signed comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed greater or equal.
    Ge,
    /// Signed greater than.
    Gt,
    /// Signed less or equal.
    Le,
}

impl Cond {
    /// Evaluates the condition on two register values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (a, b) = (a as i64, b as i64);
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::Gt => a > b,
            Cond::Le => a <= b,
        }
    }

    /// The condition with inverted sense.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Gt => "gt",
            Cond::Le => "le",
        };
        f.write_str(s)
    }
}

/// A machine instruction.
///
/// All control transfers name absolute [`Pc`]s; the [`crate::ProgramBuilder`]
/// resolves symbolic labels to `Pc`s at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `rd <- imm`.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd <- rs op rt`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source.
        rt: Reg,
    },
    /// `rd <- rs op imm`.
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `rd <- mem64[rs + off]`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// `mem64[base + off] <- rs`.
    Store {
        /// Value register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Conditional branch: `if rs cond rt goto target`.
    Br {
        /// Condition.
        cond: Cond,
        /// First comparison source.
        rs: Reg,
        /// Second comparison source.
        rt: Reg,
        /// Branch target.
        target: Pc,
    },
    /// Unconditional direct jump.
    Jmp {
        /// Jump target.
        target: Pc,
    },
    /// Indirect jump through a register (e.g. switch dispatch).
    ///
    /// The set of possible targets is recorded in
    /// [`Program::jump_targets`](crate::Program::jump_targets).
    Jr {
        /// Register holding the target address (a `Pc` value).
        rs: Reg,
    },
    /// Direct call: `r31 <- pc + 1; goto target`.
    Call {
        /// Callee entry point.
        target: Pc,
    },
    /// Indirect call through a register.
    CallR {
        /// Register holding the callee entry (a `Pc` value).
        rs: Reg,
    },
    /// Return: `goto r31`.
    Ret,
    /// Stop the machine.
    Halt,
    /// No operation.
    Nop,
}

/// Coarse classification of an instruction, used by the CFG layer and the
/// timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Single-cycle integer operation (including `Li` and `Nop`).
    Alu,
    /// Long-latency integer operation (multiply).
    Mul,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Conditional branch.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Indirect jump.
    IndirectJump,
    /// Direct or indirect procedure call.
    Call,
    /// Procedure return.
    Ret,
    /// Machine halt.
    Halt,
}

impl Inst {
    /// The coarse class of this instruction.
    pub fn class(self) -> InstClass {
        match self {
            Inst::Li { .. } | Inst::Nop => InstClass::Alu,
            Inst::Alu { op, .. } | Inst::AluI { op, .. } => {
                if op.is_long_latency() {
                    InstClass::Mul
                } else {
                    InstClass::Alu
                }
            }
            Inst::Load { .. } => InstClass::Load,
            Inst::Store { .. } => InstClass::Store,
            Inst::Br { .. } => InstClass::CondBranch,
            Inst::Jmp { .. } => InstClass::Jump,
            Inst::Jr { .. } => InstClass::IndirectJump,
            Inst::Call { .. } | Inst::CallR { .. } => InstClass::Call,
            Inst::Ret => InstClass::Ret,
            Inst::Halt => InstClass::Halt,
        }
    }

    /// True if this instruction may redirect control flow.
    pub fn is_control(self) -> bool {
        !matches!(
            self.class(),
            InstClass::Alu | InstClass::Mul | InstClass::Load | InstClass::Store
        )
    }

    /// True if this is a conditional branch.
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Inst::Br { .. })
    }

    /// Destination register, if this instruction writes one.
    ///
    /// Writes to `r0` are reported as `None` because they are discarded.
    pub fn dst(self) -> Option<Reg> {
        let d = match self {
            Inst::Li { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::AluI { rd, .. }
            | Inst::Load { rd, .. } => Some(rd),
            Inst::Call { .. } | Inst::CallR { .. } => Some(Reg::RA),
            _ => None,
        };
        d.filter(|&r| r != Reg::R0)
    }

    /// Source registers read by this instruction (up to two).
    ///
    /// Reads of `r0` are included (they are trivially ready in the timing
    /// model because `r0` is a constant).
    pub fn srcs(self) -> [Option<Reg>; 2] {
        match self {
            Inst::Li { .. } | Inst::Jmp { .. } | Inst::Call { .. } | Inst::Halt | Inst::Nop => {
                [None, None]
            }
            Inst::Alu { rs, rt, .. } | Inst::Br { rs, rt, .. } => [Some(rs), Some(rt)],
            Inst::AluI { rs, .. } | Inst::Jr { rs } | Inst::CallR { rs } => [Some(rs), None],
            Inst::Load { base, .. } => [Some(base), None],
            Inst::Store { rs, base, .. } => [Some(rs), Some(base)],
            Inst::Ret => [Some(Reg::RA), None],
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Li { rd, imm } => write!(f, "li    {rd}, {imm}"),
            Inst::Alu { op, rd, rs, rt } => write!(f, "{op:<5} {rd}, {rs}, {rt}"),
            Inst::AluI { op, rd, rs, imm } => write!(f, "{op}i  {rd}, {rs}, {imm}"),
            Inst::Load { rd, base, off } => write!(f, "ld    {rd}, {off}({base})"),
            Inst::Store { rs, base, off } => write!(f, "sd    {rs}, {off}({base})"),
            Inst::Br {
                cond,
                rs,
                rt,
                target,
            } => write!(f, "b{cond}   {rs}, {rt}, {target}"),
            Inst::Jmp { target } => write!(f, "j     {target}"),
            Inst::Jr { rs } => write!(f, "jr    {rs}"),
            Inst::Call { target } => write!(f, "call  {target}"),
            Inst::CallR { rs } => write!(f, "callr {rs}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for i in 0..Reg::COUNT {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R31.to_string(), "r31");
        assert_eq!(Reg::SP, Reg::R29);
        assert_eq!(Reg::RA, Reg::R31);
    }

    #[test]
    fn alu_ops_basic() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX); // wraps
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.apply(1, 4), 16);
        assert_eq!(AluOp::Srl.apply(16, 4), 1);
        assert_eq!(AluOp::Sra.apply(-16i64 as u64, 4), -1i64 as u64);
        assert_eq!(AluOp::Mul.apply(7, 6), 42);
        assert_eq!(AluOp::Slt.apply(-1i64 as u64, 1), 1);
        assert_eq!(AluOp::Sltu.apply(-1i64 as u64, 1), 0);
    }

    #[test]
    fn alu_shift_amount_masked() {
        assert_eq!(AluOp::Sll.apply(1, 64), 1); // 64 & 63 == 0
        assert_eq!(AluOp::Srl.apply(8, 65), 4); // 65 & 63 == 1
    }

    #[test]
    fn cond_eval_and_negate() {
        let cases = [
            (Cond::Eq, 3i64, 3i64, true),
            (Cond::Ne, 3, 3, false),
            (Cond::Lt, -2, 1, true),
            (Cond::Ge, -2, 1, false),
            (Cond::Gt, 5, 5, false),
            (Cond::Le, 5, 5, true),
        ];
        for (c, a, b, expect) in cases {
            assert_eq!(c.eval(a as u64, b as u64), expect, "{c} {a} {b}");
            assert_eq!(c.negate().eval(a as u64, b as u64), !expect);
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn inst_dst_filters_r0() {
        let i = Inst::Li {
            rd: Reg::R0,
            imm: 5,
        };
        assert_eq!(i.dst(), None);
        let i = Inst::Li {
            rd: Reg::R4,
            imm: 5,
        };
        assert_eq!(i.dst(), Some(Reg::R4));
    }

    #[test]
    fn call_writes_link_register() {
        let i = Inst::Call { target: Pc::new(7) };
        assert_eq!(i.dst(), Some(Reg::RA));
        assert_eq!(i.class(), InstClass::Call);
        let i = Inst::CallR { rs: Reg::R5 };
        assert_eq!(i.dst(), Some(Reg::RA));
        assert_eq!(i.srcs(), [Some(Reg::R5), None]);
    }

    #[test]
    fn ret_reads_link_register() {
        assert_eq!(Inst::Ret.srcs(), [Some(Reg::RA), None]);
        assert_eq!(Inst::Ret.class(), InstClass::Ret);
    }

    #[test]
    fn classes() {
        assert_eq!(Inst::Nop.class(), InstClass::Alu);
        assert_eq!(
            Inst::Alu {
                op: AluOp::Mul,
                rd: Reg::R1,
                rs: Reg::R2,
                rt: Reg::R3
            }
            .class(),
            InstClass::Mul
        );
        assert!(Inst::Halt.is_control());
        assert!(Inst::Jr { rs: Reg::R1 }.is_control());
        assert!(!Inst::Nop.is_control());
        assert!(Inst::Br {
            cond: Cond::Eq,
            rs: Reg::R0,
            rt: Reg::R0,
            target: Pc::new(0)
        }
        .is_cond_branch());
    }

    #[test]
    fn display_formats() {
        let i = Inst::Load {
            rd: Reg::R3,
            base: Reg::R4,
            off: 16,
        };
        assert_eq!(i.to_string(), "ld    r3, 16(r4)");
        let i = Inst::Br {
            cond: Cond::Ne,
            rs: Reg::R1,
            rt: Reg::R0,
            target: Pc::new(3),
        };
        assert!(i.to_string().starts_with("bne"));
    }
}
