//! Incremental program construction with symbolic labels.

use crate::error::BuildError;
use crate::inst::{AluOp, Cond, Inst, Reg};
use crate::program::{Function, Pc, Program};
use std::collections::BTreeMap;

/// A symbolic code location, created by [`ProgramBuilder::fresh_label`] and
/// bound to a concrete [`Pc`] by [`ProgramBuilder::bind_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

#[derive(Debug)]
struct LabelState {
    name: String,
    pc: Option<Pc>,
}

#[derive(Debug, Clone, Copy)]
enum Fixup {
    /// Patch the `target` field of the instruction at `inst` with a label.
    BranchTarget { inst: usize, label: Label },
    /// Patch the `target` field of a `Call` with a function entry.
    CallTarget { inst: usize, func: usize },
    /// Patch the immediate of an `Li` with a label's byte address.
    LiLabelAddr { inst: usize, label: Label },
    /// Patch the immediate of an `Li` with a function's entry byte address.
    LiFuncAddr { inst: usize, func: usize },
    /// Patch a data word with a label's byte address.
    DataLabelAddr { data: usize, label: Label },
    /// Patch a data word with a function's entry byte address.
    DataFuncAddr { data: usize, func: usize },
}

/// Builds a [`Program`] instruction by instruction.
///
/// The builder enforces the program structure the rest of the system relies
/// on: every instruction lives inside exactly one function, every function
/// ends in a non-fall-through terminator, every label is bound exactly once,
/// and every indirect jump carries a jump table.
///
/// Register `r28` is reserved as the assembler temporary: the `*_imm`
/// convenience emitters clobber it, mirroring the MIPS `$at` convention.
///
/// # Example
///
/// ```
/// use polyflow_isa::{ProgramBuilder, Reg, Cond};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::named("demo");
/// b.begin_function("main");
/// let skip = b.fresh_label("skip");
/// b.li(Reg::R1, 1);
/// b.br_imm(Cond::Eq, Reg::R1, 0, skip);
/// b.li(Reg::R2, 99);
/// b.bind_label(skip);
/// b.halt();
/// b.end_function();
/// let program = b.build()?;
/// assert_eq!(program.name(), "demo");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: Vec<LabelState>,
    fixups: Vec<Fixup>,
    functions: Vec<Function>,
    func_names: Vec<String>,
    open: Option<(String, u32)>,
    jump_tables: Vec<(usize, Vec<Label>)>,
    data: Vec<(u64, u64)>,
    data_cursor: u64,
}

/// Base byte address of the builder-managed data segment.
pub(crate) const DATA_BASE: u64 = 0x10_000;

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates an empty builder named `"program"`.
    pub fn new() -> ProgramBuilder {
        Self::named("program")
    }

    /// Creates an empty builder with the given program name.
    pub fn named(name: &str) -> ProgramBuilder {
        ProgramBuilder {
            name: name.to_string(),
            insts: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            functions: Vec::new(),
            func_names: Vec::new(),
            open: None,
            jump_tables: Vec::new(),
            data: Vec::new(),
            data_cursor: DATA_BASE,
        }
    }

    /// The `Pc` the next emitted instruction will occupy.
    pub fn here(&self) -> Pc {
        Pc::new(self.insts.len() as u32)
    }

    /// Renames the program (the assembler's `.program` directive).
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    // ---- functions --------------------------------------------------------

    /// Opens a new function. The next instruction is its entry point.
    pub fn begin_function(&mut self, name: &str) {
        assert!(
            self.open.is_none(),
            "begin_function(`{name}`) while `{}` is open",
            self.open.as_ref().map(|(n, _)| n.as_str()).unwrap_or("?")
        );
        self.open = Some((name.to_string(), self.insts.len() as u32));
    }

    /// Closes the currently open function.
    ///
    /// # Panics
    ///
    /// Panics if no function is open.
    pub fn end_function(&mut self) {
        let (name, start) = self
            .open
            .take()
            .expect("end_function with no open function");
        let range = start..self.insts.len() as u32;
        // A forward `call` may have reserved a placeholder slot; fill it.
        let placeholder = self
            .func_names
            .iter()
            .position(|n| *n == name)
            .filter(|&i| self.functions[i].range.start == u32::MAX);
        match placeholder {
            Some(i) => self.functions[i].range = range,
            None => {
                self.functions.push(Function {
                    name: name.clone(),
                    range,
                });
                self.func_names.push(name);
            }
        }
    }

    fn func_index(&mut self, name: &str) -> usize {
        if let Some(i) = self.func_names.iter().position(|n| n == name) {
            return i;
        }
        // Forward reference: reserve a slot resolved at build time.
        self.func_names.push(name.to_string());
        self.functions.push(Function {
            name: name.to_string(),
            range: u32::MAX..u32::MAX,
        });
        self.func_names.len() - 1
    }

    // ---- labels -----------------------------------------------------------

    /// Creates a new, unbound label. `name` is used in diagnostics only.
    pub fn fresh_label(&mut self, name: &str) -> Label {
        self.labels.push(LabelState {
            name: name.to_string(),
            pc: None,
        });
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind_label(&mut self, label: Label) {
        let here = self.here();
        let state = &mut self.labels[label.0 as usize];
        assert!(state.pc.is_none(), "label `{}` bound twice", state.name);
        state.pc = Some(here);
    }

    // ---- data segment ------------------------------------------------------

    /// Allocates and initializes a run of 64-bit data words; returns the byte
    /// address of the first word.
    pub fn alloc_data(&mut self, words: &[u64]) -> u64 {
        let base = self.data_cursor;
        for (i, &w) in words.iter().enumerate() {
            self.data.push((base + 8 * i as u64, w));
        }
        self.data_cursor += 8 * words.len().max(1) as u64;
        base
    }

    /// Allocates `nwords` zeroed 64-bit words; returns the base byte address.
    pub fn alloc_zeroed(&mut self, nwords: usize) -> u64 {
        let base = self.data_cursor;
        self.data_cursor += 8 * nwords.max(1) as u64;
        base
    }

    /// Initializes a run of 64-bit data words at an absolute byte address
    /// (the assembler's `.data name @ addr = [..]` form) and returns it.
    ///
    /// The allocation cursor advances past the run if it previously sat
    /// inside or before it, so later [`Self::alloc_data`] calls never
    /// overlap an explicitly placed block.
    pub fn alloc_data_at(&mut self, addr: u64, words: &[u64]) -> u64 {
        for (i, &w) in words.iter().enumerate() {
            self.data.push((addr + 8 * i as u64, w));
        }
        let end = addr + 8 * words.len().max(1) as u64;
        self.data_cursor = self.data_cursor.max(end);
        addr
    }

    /// Records an initialized data word at an absolute byte address.
    ///
    /// Used by generators that lay out structures (linked lists, graphs)
    /// inside a region reserved with [`ProgramBuilder::alloc_zeroed`].
    pub fn push_initialized_word(&mut self, addr: u64, value: u64) {
        self.data.push((addr, value));
    }

    /// Allocates a table of code addresses (one word per label), patched at
    /// build time with each label's byte address. Returns the base address.
    pub fn alloc_label_table(&mut self, labels: &[Label]) -> u64 {
        let base = self.data_cursor;
        for (i, &l) in labels.iter().enumerate() {
            let idx = self.data.len();
            self.data.push((base + 8 * i as u64, 0));
            self.fixups.push(Fixup::DataLabelAddr {
                data: idx,
                label: l,
            });
        }
        self.data_cursor += 8 * labels.len().max(1) as u64;
        base
    }

    /// Allocates a table of function-entry addresses, patched at build time.
    pub fn alloc_fn_table(&mut self, names: &[&str]) -> u64 {
        let base = self.data_cursor;
        for (i, name) in names.iter().enumerate() {
            let func = self.func_index(name);
            let idx = self.data.len();
            self.data.push((base + 8 * i as u64, 0));
            self.fixups.push(Fixup::DataFuncAddr { data: idx, func });
        }
        self.data_cursor += 8 * names.len().max(1) as u64;
        base
    }

    // ---- instruction emitters ----------------------------------------------

    fn emit(&mut self, inst: Inst) -> Pc {
        let pc = self.here();
        self.insts.push(inst);
        pc
    }

    /// Emits `li rd, imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> Pc {
        self.emit(Inst::Li { rd, imm })
    }

    /// Emits `li rd, <address of label>` (patched at build time).
    pub fn li_label_addr(&mut self, rd: Reg, label: Label) -> Pc {
        let pc = self.emit(Inst::Li { rd, imm: 0 });
        self.fixups.push(Fixup::LiLabelAddr {
            inst: pc.index(),
            label,
        });
        pc
    }

    /// Emits `li rd, <entry address of function>` (patched at build time).
    pub fn li_fn_addr(&mut self, rd: Reg, name: &str) -> Pc {
        let func = self.func_index(name);
        let pc = self.emit(Inst::Li { rd, imm: 0 });
        self.fixups.push(Fixup::LiFuncAddr {
            inst: pc.index(),
            func,
        });
        pc
    }

    /// Emits `op rd, rs, rt`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs: Reg, rt: Reg) -> Pc {
        self.emit(Inst::Alu { op, rd, rs, rt })
    }

    /// Emits `opi rd, rs, imm`.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs: Reg, imm: i64) -> Pc {
        self.emit(Inst::AluI { op, rd, rs, imm })
    }

    /// Emits `ld rd, off(base)`.
    pub fn load(&mut self, rd: Reg, base: Reg, off: i64) -> Pc {
        self.emit(Inst::Load { rd, base, off })
    }

    /// Emits `sd rs, off(base)`.
    pub fn store(&mut self, rs: Reg, base: Reg, off: i64) -> Pc {
        self.emit(Inst::Store { rs, base, off })
    }

    /// Emits a conditional branch to `label`.
    pub fn br(&mut self, cond: Cond, rs: Reg, rt: Reg, label: Label) -> Pc {
        let pc = self.emit(Inst::Br {
            cond,
            rs,
            rt,
            target: Pc::new(0),
        });
        self.fixups.push(Fixup::BranchTarget {
            inst: pc.index(),
            label,
        });
        pc
    }

    /// Emits `li r28, imm; b<cond> rs, r28, label`.
    ///
    /// Clobbers the assembler temporary `r28`. Returns the `Pc` of the
    /// branch itself.
    pub fn br_imm(&mut self, cond: Cond, rs: Reg, imm: i64, label: Label) -> Pc {
        self.li(Reg::R28, imm);
        self.br(cond, rs, Reg::R28, label)
    }

    /// Emits an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> Pc {
        let pc = self.emit(Inst::Jmp { target: Pc::new(0) });
        self.fixups.push(Fixup::BranchTarget {
            inst: pc.index(),
            label,
        });
        pc
    }

    /// Emits an indirect jump through `rs`, registering `targets` as its
    /// jump table for static analysis.
    pub fn jr(&mut self, rs: Reg, targets: &[Label]) -> Pc {
        let pc = self.emit(Inst::Jr { rs });
        self.jump_tables.push((pc.index(), targets.to_vec()));
        pc
    }

    /// Emits a direct call to the named function (forward references are
    /// allowed).
    pub fn call(&mut self, name: &str) -> Pc {
        let func = self.func_index(name);
        let pc = self.emit(Inst::Call { target: Pc::new(0) });
        self.fixups.push(Fixup::CallTarget {
            inst: pc.index(),
            func,
        });
        pc
    }

    /// Emits an indirect call through `rs`.
    pub fn callr(&mut self, rs: Reg) -> Pc {
        self.emit(Inst::CallR { rs })
    }

    /// Emits `ret`.
    pub fn ret(&mut self) -> Pc {
        self.emit(Inst::Ret)
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> Pc {
        self.emit(Inst::Halt)
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> Pc {
        self.emit(Inst::Nop)
    }

    // ---- finalization -------------------------------------------------------

    /// Resolves labels and fixups and validates the program.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if a label is unbound, a function is open,
    /// empty or duplicated, a control transfer leaves the program, an
    /// indirect jump lacks a jump table, or a function lacks a final
    /// terminator.
    pub fn build(mut self) -> Result<Program, BuildError> {
        if let Some((name, _)) = &self.open {
            return Err(BuildError::NestedFunction { name: name.clone() });
        }

        // Unresolved forward-referenced functions show up as empty ranges.
        for f in &self.functions {
            if f.range.start == u32::MAX {
                return Err(BuildError::UnboundLabel {
                    name: format!("function `{}`", f.name),
                });
            }
            if f.range.is_empty() {
                return Err(BuildError::EmptyFunction {
                    name: f.name.clone(),
                });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for f in &self.functions {
            if !seen.insert(f.name.clone()) {
                return Err(BuildError::DuplicateFunction {
                    name: f.name.clone(),
                });
            }
        }
        // Every instruction must belong to a function.
        let mut covered = vec![false; self.insts.len()];
        for f in &self.functions {
            for i in f.range.clone() {
                covered[i as usize] = true;
            }
        }
        if let Some(i) = covered.iter().position(|&c| !c) {
            return Err(BuildError::InstOutsideFunction {
                pc: Pc::new(i as u32),
            });
        }

        let label_pc = |labels: &[LabelState], l: Label| -> Result<Pc, BuildError> {
            labels[l.0 as usize]
                .pc
                .ok_or_else(|| BuildError::UnboundLabel {
                    name: labels[l.0 as usize].name.clone(),
                })
        };

        for fixup in std::mem::take(&mut self.fixups) {
            match fixup {
                Fixup::BranchTarget { inst, label } => {
                    let pc = label_pc(&self.labels, label)?;
                    match &mut self.insts[inst] {
                        Inst::Br { target, .. } | Inst::Jmp { target } => *target = pc,
                        other => unreachable!("branch fixup on {other:?}"),
                    }
                }
                Fixup::CallTarget { inst, func } => {
                    let entry = self.functions[func].entry();
                    match &mut self.insts[inst] {
                        Inst::Call { target } => *target = entry,
                        other => unreachable!("call fixup on {other:?}"),
                    }
                }
                Fixup::LiLabelAddr { inst, label } => {
                    let pc = label_pc(&self.labels, label)?;
                    match &mut self.insts[inst] {
                        Inst::Li { imm, .. } => *imm = pc.to_value() as i64,
                        other => unreachable!("li fixup on {other:?}"),
                    }
                }
                Fixup::LiFuncAddr { inst, func } => {
                    let entry = self.functions[func].entry();
                    match &mut self.insts[inst] {
                        Inst::Li { imm, .. } => *imm = entry.to_value() as i64,
                        other => unreachable!("li fixup on {other:?}"),
                    }
                }
                Fixup::DataLabelAddr { data, label } => {
                    let pc = label_pc(&self.labels, label)?;
                    self.data[data].1 = pc.to_value();
                }
                Fixup::DataFuncAddr { data, func } => {
                    self.data[data].1 = self.functions[func].entry().to_value();
                }
            }
        }

        // Jump tables.
        let mut jump_targets = BTreeMap::new();
        for (inst, labels) in std::mem::take(&mut self.jump_tables) {
            let mut targets = Vec::with_capacity(labels.len());
            for l in labels {
                targets.push(label_pc(&self.labels, l)?);
            }
            targets.sort();
            targets.dedup();
            jump_targets.insert(Pc::new(inst as u32), targets);
        }

        // Validate targets in range and terminators present.
        let len = self.insts.len() as u32;
        for (i, inst) in self.insts.iter().enumerate() {
            let at = Pc::new(i as u32);
            let target = match *inst {
                Inst::Br { target, .. } | Inst::Jmp { target } | Inst::Call { target } => {
                    Some(target)
                }
                Inst::Jr { .. } => {
                    if !jump_targets.contains_key(&at) {
                        return Err(BuildError::MissingJumpTable { at });
                    }
                    None
                }
                _ => None,
            };
            if let Some(t) = target {
                if t.index() as u32 >= len {
                    return Err(BuildError::TargetOutOfRange { at, target: t });
                }
            }
        }
        for targets in jump_targets.values() {
            for &t in targets {
                if t.index() as u32 >= len {
                    return Err(BuildError::TargetOutOfRange {
                        at: Pc::new(0),
                        target: t,
                    });
                }
            }
        }
        for f in &self.functions {
            let last = self.insts[(f.range.end - 1) as usize];
            let terminates = matches!(
                last,
                Inst::Jmp { .. } | Inst::Jr { .. } | Inst::Ret | Inst::Halt
            );
            if !terminates {
                return Err(BuildError::MissingTerminator {
                    function: f.name.clone(),
                });
            }
        }

        let mut functions = self.functions;
        functions.sort_by_key(|f| f.range.start);

        // Canonicalize data to address order (stable, so duplicate-address
        // writes keep their relative order and the last one still wins when
        // memory is seeded). This makes `Program` equality and the
        // assembler round-trip independent of allocation order.
        let mut data = self.data;
        data.sort_by_key(|&(a, _)| a);

        Ok(Program {
            insts: self.insts,
            functions,
            jump_targets,
            data,
            name: self.name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> ProgramBuilder {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b
    }

    #[test]
    fn build_minimal_program() {
        let mut b = minimal();
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.entry(), Pc::new(0));
    }

    #[test]
    fn branch_label_resolution() {
        let mut b = minimal();
        let l = b.fresh_label("target");
        b.br(Cond::Eq, Reg::R0, Reg::R0, l);
        b.nop();
        b.bind_label(l);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        match p.inst(Pc::new(0)) {
            Inst::Br { target, .. } => assert_eq!(target, Pc::new(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backward_branch_label() {
        let mut b = minimal();
        let top = b.fresh_label("top");
        b.bind_label(top);
        b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        b.br_imm(Cond::Lt, Reg::R1, 3, top);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        match p.inst(Pc::new(2)) {
            Inst::Br { target, .. } => assert_eq!(target, Pc::new(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_error() {
        let mut b = minimal();
        let l = b.fresh_label("never");
        b.jmp(l);
        b.end_function();
        assert!(matches!(b.build(), Err(BuildError::UnboundLabel { .. })));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = minimal();
        let l = b.fresh_label("l");
        b.bind_label(l);
        b.bind_label(l);
    }

    #[test]
    fn open_function_is_error() {
        let mut b = minimal();
        b.halt();
        assert!(matches!(b.build(), Err(BuildError::NestedFunction { .. })));
    }

    #[test]
    fn empty_function_is_error() {
        let mut b = ProgramBuilder::new();
        b.begin_function("empty");
        b.end_function();
        assert!(matches!(b.build(), Err(BuildError::EmptyFunction { .. })));
    }

    #[test]
    fn duplicate_function_is_error() {
        let mut b = ProgramBuilder::new();
        b.begin_function("f");
        b.halt();
        b.end_function();
        b.begin_function("f");
        b.halt();
        b.end_function();
        assert!(matches!(
            b.build(),
            Err(BuildError::DuplicateFunction { .. })
        ));
    }

    #[test]
    fn missing_terminator_is_error() {
        let mut b = minimal();
        b.nop();
        b.end_function();
        assert!(matches!(
            b.build(),
            Err(BuildError::MissingTerminator { .. })
        ));
    }

    #[test]
    fn forward_call_resolution() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        b.call("callee");
        b.halt();
        b.end_function();
        b.begin_function("callee");
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        match p.inst(Pc::new(0)) {
            Inst::Call { target } => {
                assert_eq!(target, p.function("callee").unwrap().entry());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn call_to_undefined_function_is_error() {
        let mut b = minimal();
        b.call("ghost");
        b.halt();
        b.end_function();
        assert!(matches!(b.build(), Err(BuildError::UnboundLabel { .. })));
    }

    #[test]
    fn jr_requires_table_and_resolves() {
        let mut b = minimal();
        let a = b.fresh_label("a");
        let t = b.fresh_label("t");
        b.li_label_addr(Reg::R1, t);
        b.jr(Reg::R1, &[a, t]);
        b.bind_label(a);
        b.nop();
        b.bind_label(t);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        let targets = p.jump_targets(Pc::new(1));
        assert_eq!(targets, &[Pc::new(2), Pc::new(3)]);
        match p.inst(Pc::new(0)) {
            Inst::Li { imm, .. } => assert_eq!(imm as u64, Pc::new(3).to_value()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn data_allocation_addresses() {
        let mut b = minimal();
        let a = b.alloc_data(&[1, 2, 3]);
        let z = b.alloc_zeroed(2);
        assert_eq!(a, DATA_BASE);
        assert_eq!(z, DATA_BASE + 24);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        assert_eq!(p.initial_data().len(), 3);
        assert_eq!(p.initial_data()[2], (DATA_BASE + 16, 3));
    }

    #[test]
    fn fn_table_patched() {
        let mut b = ProgramBuilder::new();
        b.begin_function("main");
        let tbl = b.alloc_fn_table(&["f", "g"]);
        b.halt();
        b.end_function();
        b.begin_function("f");
        b.ret();
        b.end_function();
        b.begin_function("g");
        b.ret();
        b.end_function();
        let p = b.build().unwrap();
        let f = p.function("f").unwrap().entry().to_value();
        let g = p.function("g").unwrap().entry().to_value();
        assert_eq!(p.initial_data()[0], (tbl, f));
        assert_eq!(p.initial_data()[1], (tbl + 8, g));
    }

    #[test]
    fn label_table_patched() {
        let mut b = minimal();
        let l = b.fresh_label("l");
        let tbl = b.alloc_label_table(&[l]);
        b.nop();
        b.bind_label(l);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        assert_eq!(p.initial_data()[0], (tbl, Pc::new(1).to_value()));
    }

    #[test]
    fn br_imm_expands_to_two_insts() {
        let mut b = minimal();
        let l = b.fresh_label("l");
        let pc = b.br_imm(Cond::Eq, Reg::R1, 7, l);
        assert_eq!(pc, Pc::new(1)); // li at 0, branch at 1
        b.bind_label(l);
        b.halt();
        b.end_function();
        let p = b.build().unwrap();
        assert!(matches!(
            p.inst(Pc::new(0)),
            Inst::Li {
                rd: Reg::R28,
                imm: 7
            }
        ));
    }

    #[test]
    fn target_out_of_range_checked() {
        // A jmp to a label bound past the final instruction: bind the label
        // at the very end, after the last instruction.
        let mut b = minimal();
        let l = b.fresh_label("end");
        b.jmp(l);
        b.end_function();
        b.bind_label(l); // binds at index 1, but program has only 1 inst
        assert!(matches!(
            b.build(),
            Err(BuildError::TargetOutOfRange { .. }) | Err(BuildError::InstOutsideFunction { .. })
        ));
    }
}
