//! Program container: instructions, functions, and indirect-jump metadata.

use crate::inst::Inst;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

/// A program counter: the index of an instruction in the program.
///
/// Displayed as a hex byte address (`pc * 4`) to match the paper's listings
/// (e.g. `0x9d60`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u32);

impl Pc {
    /// Creates a `Pc` from an instruction index.
    pub const fn new(index: u32) -> Pc {
        Pc(index)
    }

    /// The instruction index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The byte address (`index * 4`), as the paper prints PCs.
    pub const fn byte_addr(self) -> u64 {
        (self.0 as u64) * 4
    }

    /// The next sequential `Pc`.
    pub const fn next(self) -> Pc {
        Pc(self.0 + 1)
    }

    /// Encodes this `Pc` as a register value (its byte address).
    pub const fn to_value(self) -> u64 {
        self.byte_addr()
    }

    /// Decodes a register value (byte address) back into a `Pc`.
    ///
    /// Returns `None` if the value is not 4-aligned or out of `u32` range.
    pub fn from_value(v: u64) -> Option<Pc> {
        if !v.is_multiple_of(4) {
            return None;
        }
        u32::try_from(v / 4).ok().map(Pc)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}", self.byte_addr())
    }
}

/// A function: a named contiguous instruction range with a single entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (unique within a program).
    pub name: String,
    /// Instruction index range `[start, end)`.
    pub range: Range<u32>,
}

impl Function {
    /// The entry `Pc` of the function.
    pub fn entry(&self) -> Pc {
        Pc::new(self.range.start)
    }

    /// True if `pc` lies within this function's body.
    pub fn contains(&self, pc: Pc) -> bool {
        self.range.contains(&(pc.index() as u32))
    }

    /// Number of instructions in the function.
    pub fn len(&self) -> usize {
        (self.range.end - self.range.start) as usize
    }

    /// True if the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// A complete program: instructions, function table, indirect-jump target
/// metadata, and initial data memory.
///
/// Construct programs with [`crate::ProgramBuilder`]; the builder validates
/// label resolution, function boundaries and jump-table sanity.
///
/// Equality is structural over every field (instructions, functions, jump
/// tables, initial data, name) — two equal programs assemble to the same
/// text and simulate identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    pub(crate) insts: Vec<Inst>,
    pub(crate) functions: Vec<Function>,
    pub(crate) jump_targets: BTreeMap<Pc, Vec<Pc>>,
    pub(crate) data: Vec<(u64, u64)>,
    pub(crate) name: String,
}

impl Program {
    /// The program's name (defaults to `"program"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn inst(&self, pc: Pc) -> Inst {
        self.insts[pc.index()]
    }

    /// The instruction at `pc`, or `None` if out of range.
    pub fn get(&self, pc: Pc) -> Option<Inst> {
        self.insts.get(pc.index()).copied()
    }

    /// All instructions in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The function table, in layout order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The function containing `pc`, if any.
    pub fn function_at(&self, pc: Pc) -> Option<&Function> {
        self.functions.iter().find(|f| f.contains(pc))
    }

    /// Possible targets of the indirect jump or indirect call at `pc`.
    ///
    /// Returns an empty slice for PCs without registered targets. The CFG
    /// layer uses this to resolve `Jr`/`CallR` control flow statically.
    pub fn jump_targets(&self, pc: Pc) -> &[Pc] {
        self.jump_targets.get(&pc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Initial data memory as `(byte address, 64-bit value)` pairs.
    pub fn initial_data(&self) -> &[(u64, u64)] {
        &self.data
    }

    /// The entry point: the start of the first function, or `Pc(0)`.
    pub fn entry(&self) -> Pc {
        self.functions
            .first()
            .map(Function::entry)
            .unwrap_or(Pc::new(0))
    }

    /// Renders the program as an assembly listing with function headers.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let pc = Pc::new(i as u32);
            if let Some(f) = self.functions.iter().find(|f| f.entry() == pc) {
                let _ = writeln!(out, "{}:", f.name);
            }
            let _ = writeln!(out, "  {pc}: {inst}");
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Reg;

    #[test]
    fn pc_byte_addr_roundtrip() {
        let pc = Pc::new(10);
        assert_eq!(pc.byte_addr(), 40);
        assert_eq!(Pc::from_value(pc.to_value()), Some(pc));
        assert_eq!(Pc::from_value(41), None);
        assert_eq!(pc.next(), Pc::new(11));
        assert_eq!(pc.to_string(), "0x0028");
    }

    #[test]
    fn function_contains() {
        let f = Function {
            name: "f".into(),
            range: 2..5,
        };
        assert!(f.contains(Pc::new(2)));
        assert!(f.contains(Pc::new(4)));
        assert!(!f.contains(Pc::new(5)));
        assert_eq!(f.entry(), Pc::new(2));
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
    }

    #[test]
    fn program_accessors() {
        let p = Program {
            insts: vec![Inst::Nop, Inst::Halt],
            functions: vec![Function {
                name: "main".into(),
                range: 0..2,
            }],
            jump_targets: BTreeMap::new(),
            data: vec![(8, 42)],
            name: "t".into(),
        };
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.inst(Pc::new(0)), Inst::Nop);
        assert_eq!(p.get(Pc::new(5)), None);
        assert_eq!(p.entry(), Pc::new(0));
        assert!(p.function("main").is_some());
        assert!(p.function("nope").is_none());
        assert_eq!(p.function_at(Pc::new(1)).unwrap().name, "main");
        assert_eq!(p.jump_targets(Pc::new(0)), &[]);
        assert_eq!(p.initial_data(), &[(8, 42)]);
        assert!(p.listing().contains("main:"));
    }

    #[test]
    fn listing_shows_instructions() {
        let p = Program {
            insts: vec![Inst::Li {
                rd: Reg::R1,
                imm: 3,
            }],
            functions: vec![],
            jump_targets: BTreeMap::new(),
            data: vec![],
            name: "t".into(),
        };
        assert!(p.to_string().contains("li"));
    }
}
