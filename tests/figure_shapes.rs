//! Shape tests: the qualitative results of the paper's evaluation must
//! hold on the stand-in workloads. These are the repository's regression
//! guard for the figure-generating experiments (they run a subset at
//! reduced windows, so `--release` is recommended but not required).

use polyflow::core::{Policy, ProgramAnalysis};
use polyflow::isa::execute_window;
use polyflow::reconv::ReconvConfig;
use polyflow::sim::{
    simulate, MachineConfig, NoSpawn, PreparedTrace, ReconvSpawnSource, SimResult,
    StaticSpawnSource,
};

fn run(name: &str, policy: Policy, window: u64) -> (SimResult, SimResult) {
    let w = polyflow::workloads::by_name(name).unwrap();
    let trace = execute_window(&w.program, window).unwrap().trace;
    let ss = MachineConfig::superscalar();
    let prep = PreparedTrace::new(&trace, &ss);
    let base = simulate(&prep, &ss, &mut NoSpawn);
    let pf = MachineConfig::hpca07();
    let prep = PreparedTrace::new(&trace, &pf);
    let analysis = ProgramAnalysis::analyze(&w.program);
    let mut src = StaticSpawnSource::new(analysis.spawn_table(policy));
    let r = simulate(&prep, &pf, &mut src);
    (base, r)
}

fn speedup(name: &str, policy: Policy, window: u64) -> f64 {
    let (base, r) = run(name, policy, window);
    r.speedup_percent_over(&base)
}

const W: u64 = 150_000;

/// Figure 9, mcf: hammock spawns jump over hard-to-predict branches whose
/// resolution waits on cache misses.
#[test]
fn mcf_responds_to_hammocks() {
    let hammock = speedup("mcf", Policy::Hammock, W);
    let loop_ft = speedup("mcf", Policy::LoopFt, W);
    assert!(hammock > 10.0, "hammock speedup {hammock:.1}%");
    assert!(
        hammock > loop_ft + 5.0,
        "hammock {hammock:.1} vs loopFT {loop_ft:.1}"
    );
}

/// Figure 9, vortex: procedure fall-throughs dominate.
#[test]
fn vortex_responds_to_proc_fallthrough() {
    let proc_ft = speedup("vortex", Policy::ProcFt, W);
    let hammock = speedup("vortex", Policy::Hammock, W);
    assert!(proc_ft > 10.0, "procFT speedup {proc_ft:.1}%");
    assert!(proc_ft > hammock + 5.0);
}

/// Figure 9, vpr.route: loop fall-throughs expose the independent outer
/// routes.
#[test]
fn vpr_route_responds_to_loop_fallthrough() {
    let loop_ft = speedup("vpr.route", Policy::LoopFt, W);
    let hammock = speedup("vpr.route", Policy::Hammock, W);
    assert!(loop_ft > 10.0, "loopFT speedup {loop_ft:.1}%");
    assert!(loop_ft > hammock + 5.0);
}

/// Figure 9, twolf: loop fall-throughs (outer-loop parallelism) dominate.
#[test]
fn twolf_responds_to_loop_fallthrough() {
    let loop_ft = speedup("twolf", Policy::LoopFt, W);
    assert!(loop_ft > 20.0, "loopFT speedup {loop_ft:.1}%");
}

/// Figure 9 headline on a subset: postdoms is at least as good as (close
/// to) the best individual heuristic per benchmark.
#[test]
fn postdoms_covers_heuristics_on_subset() {
    for name in ["mcf", "vortex", "twolf", "gcc"] {
        let postdoms = speedup(name, Policy::Postdoms, W);
        let best = Policy::figure9()[..5]
            .iter()
            .map(|&p| speedup(name, p, W))
            .fold(f64::MIN, f64::max);
        assert!(
            postdoms >= best - 6.0,
            "{name}: postdoms {postdoms:.1}% vs best heuristic {best:.1}%"
        );
    }
}

/// Figure 11, vortex: removing procFT erases vortex's speedup.
#[test]
fn excluding_proc_ft_hurts_vortex() {
    use polyflow::core::SpawnKind;
    let full = speedup("vortex", Policy::Postdoms, W);
    let without = speedup(
        "vortex",
        Policy::PostdomsWithout(SpawnKind::ProcFallThrough),
        W,
    );
    assert!(full - without > 10.0, "loss {:.1}", full - without);
}

/// Figure 12: the reconvergence predictor approximates the compiler on a
/// benchmark with learnable joins (gcc), and its speedup is positive.
#[test]
fn reconvergence_predictor_is_close_on_gcc() {
    let w = polyflow::workloads::by_name("gcc").unwrap();
    let trace = execute_window(&w.program, W).unwrap().trace;
    let ss = MachineConfig::superscalar();
    let prep = PreparedTrace::new(&trace, &ss);
    let base = simulate(&prep, &ss, &mut NoSpawn);
    let pf = MachineConfig::hpca07();
    let prep = PreparedTrace::new(&trace, &pf);

    let analysis = ProgramAnalysis::analyze(&w.program);
    let mut static_src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
    let pd = simulate(&prep, &pf, &mut static_src);

    let mut dyn_src = ReconvSpawnSource::new(ReconvConfig::default());
    let rec = simulate(&prep, &pf, &mut dyn_src);

    let pd_s = pd.speedup_percent_over(&base);
    let rec_s = rec.speedup_percent_over(&base);
    assert!(rec_s > 0.0, "rec_pred should speed gcc up, got {rec_s:.1}%");
    assert!(
        rec_s > 0.5 * pd_s,
        "rec_pred {rec_s:.1}% should be within 2x of postdoms {pd_s:.1}%"
    );
}
