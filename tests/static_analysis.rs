//! End-to-end checks of the static analysis layer: the lint pass is clean
//! over every bundled workload, deliberately broken programs produce the
//! expected diagnostics, and static liveness is differentially validated
//! against the interpreter — the registers a task actually reads before
//! writing at runtime must be a subset of the statically predicted
//! live-in set at its spawn target.

use polyflow_core::{
    check_spawn_points, verify, CheckKind, ProgramAnalysis, SpawnKind, SpawnPoint, VerifyOptions,
};
use polyflow_dataflow::{read_before_write_masks, EntryDefs};
use polyflow_isa::{execute_window, AluOp, Cond, Pc, ProgramBuilder, Reg};

#[test]
fn lint_is_clean_over_every_workload() {
    for w in polyflow_workloads::all() {
        let analysis = ProgramAnalysis::analyze(&w.program);
        let report = verify(&w.program, &analysis, &VerifyOptions::default());
        assert!(
            report.is_clean(),
            "{}: unexpected diagnostics: {:#?}",
            w.name,
            report.diagnostics
        );
        // Every spawn candidate gets a hint-pressure entry.
        assert_eq!(report.hint_pressure.len(), analysis.candidates().len());
    }
}

/// The differential contract behind the spawn-hint mechanism: for every
/// occurrence of a spawn target in the trace, the registers the dynamic
/// suffix reads before writing must be statically predicted live.
#[test]
fn dynamic_reads_are_subset_of_static_live_in() {
    for w in polyflow_workloads::all() {
        let analysis = ProgramAnalysis::analyze(&w.program);
        let targets: Vec<Pc> = analysis.candidates().iter().map(|sp| sp.target).collect();
        let trace = execute_window(&w.program, w.window)
            .expect("workload runs")
            .trace;
        let dynamic = read_before_write_masks(&trace, &targets);
        for (pc, &mask) in &dynamic {
            let live = analysis.live_in_mask(*pc);
            assert_eq!(
                mask & !live,
                0,
                "{}: at {pc}, dynamically read-before-write regs {mask:#x} \
                 are not all in static live-in {live:#x}",
                w.name
            );
        }
    }
}

#[test]
fn dead_code_produces_unreachable_diagnostic() {
    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    let end = b.fresh_label("end");
    b.jmp(end);
    b.alui(AluOp::Add, Reg::R1, Reg::R1, 1); // dead
    b.bind_label(end);
    b.halt();
    b.end_function();
    let p = b.build().unwrap();
    let a = ProgramAnalysis::analyze(&p);
    let r = verify(&p, &a, &VerifyOptions::default());
    assert_eq!(r.of_kind(CheckKind::Unreachable).count(), 1);
    assert!(!r.is_clean());
}

#[test]
fn strict_entry_policy_flags_uninitialized_read() {
    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    b.alu(AluOp::Add, Reg::R2, Reg::R11, Reg::R0); // reads r11, never written
    b.halt();
    b.end_function();
    let p = b.build().unwrap();
    let a = ProgramAnalysis::analyze(&p);
    let strict = VerifyOptions {
        entry_defs: EntryDefs::Strict,
        ..VerifyOptions::default()
    };
    let r = verify(&p, &a, &strict);
    let uses: Vec<_> = r.of_kind(CheckKind::UndefinedUse).collect();
    assert_eq!(uses.len(), 1);
    assert!(uses[0].message.contains("r11"));
    // The machine-honest policy accepts the same program: the register
    // file is zeroed before the first instruction.
    assert!(verify(&p, &a, &VerifyOptions::default()).is_clean());
}

#[test]
fn cross_function_jump_is_a_malformed_terminator() {
    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    let inside_other = b.fresh_label("inside_other");
    b.jmp(inside_other);
    b.end_function();
    b.begin_function("other");
    b.bind_label(inside_other);
    b.halt();
    b.end_function();
    let p = b.build().unwrap();
    let a = ProgramAnalysis::analyze(&p);
    let r = verify(&p, &a, &VerifyOptions::default());
    assert!(r.of_kind(CheckKind::MalformedTerminator).count() >= 1);
}

#[test]
fn jump_into_loop_body_is_irreducible() {
    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    let mid = b.fresh_label("mid");
    let top = b.fresh_label("top");
    b.br_imm(Cond::Eq, Reg::R1, 0, mid); // second entry into the cycle
    b.bind_label(top);
    b.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
    b.bind_label(mid);
    b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    b.br_imm(Cond::Lt, Reg::R3, 9, top);
    b.halt();
    b.end_function();
    let p = b.build().unwrap();
    let a = ProgramAnalysis::analyze(&p);
    let r = verify(&p, &a, &VerifyOptions::default());
    assert!(r.of_kind(CheckKind::IrreducibleLoop).count() >= 1);
}

#[test]
fn bogus_spawn_table_is_rejected() {
    // if (r1 == 0) r2++; halt — the then-arm does not postdominate the
    // branch, so spawning it is illegal.
    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    let skip = b.fresh_label("skip");
    b.br_imm(Cond::Eq, Reg::R1, 0, skip); // 0,1
    b.alui(AluOp::Add, Reg::R2, Reg::R2, 1); // 2
    b.bind_label(skip);
    b.halt(); // 3
    b.end_function();
    let p = b.build().unwrap();
    let a = ProgramAnalysis::analyze(&p);

    let mut out = Vec::new();
    check_spawn_points(
        &a,
        &[SpawnPoint {
            trigger: Pc::new(1),
            target: Pc::new(2),
            kind: SpawnKind::Hammock,
        }],
        &mut out,
    );
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].check, CheckKind::IllegalSpawn);

    // The analysis's own candidates pass the same check.
    out.clear();
    check_spawn_points(&a, a.candidates(), &mut out);
    assert!(out.is_empty());
}

/// The spawn-legality check runs as part of `verify` on the derived
/// candidates and never fires for bundled workloads (also covered by
/// `lint_is_clean_over_every_workload`); here we confirm the hint-pressure
/// report plumbs through with a workload-scale program.
#[test]
fn hint_pressure_is_reported_for_workload_spawns() {
    let w = polyflow_workloads::by_name("mcf").unwrap();
    let analysis = ProgramAnalysis::analyze(&w.program);
    let report = verify(&w.program, &analysis, &VerifyOptions::default());
    assert!(!report.hint_pressure.is_empty());
    for h in &report.hint_pressure {
        assert_eq!(h.slots, 4, "default mirrors MachineConfig::hpca07()");
        assert!(
            h.live_in.iter().all(|&r| r != Reg::R0),
            "r0 is never a live-in"
        );
    }
}
