//! Cross-crate integration: program construction → execution → analysis →
//! simulation, end to end.

use polyflow::core::{Policy, ProgramAnalysis, SpawnKind};
use polyflow::isa::{execute_window, AluOp, Cond, ProgramBuilder, Reg};
use polyflow::sim::{simulate, MachineConfig, NoSpawn, PreparedTrace, StaticSpawnSource};

/// Build → run → analyze → simulate a small program under every policy.
#[test]
fn full_stack_on_synthetic_program() {
    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    let top = b.fresh_label("top");
    let skip = b.fresh_label("skip");
    b.li(Reg::R1, 0);
    b.bind_label(top);
    b.alui(AluOp::And, Reg::R2, Reg::R1, 3);
    b.br_imm(Cond::Ne, Reg::R2, 0, skip);
    b.call("helper");
    b.bind_label(skip);
    b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    b.br_imm(Cond::Lt, Reg::R1, 200, top);
    b.halt();
    b.end_function();
    b.begin_function("helper");
    b.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    b.ret();
    b.end_function();
    let program = b.build().expect("valid program");

    let exec = execute_window(&program, 100_000).expect("executes");
    assert!(exec.halted);

    let analysis = ProgramAnalysis::analyze(&program);
    assert!(!analysis.candidates().is_empty());

    let ss = MachineConfig::superscalar();
    let prepared = PreparedTrace::new(&exec.trace, &ss);
    let base = simulate(&prepared, &ss, &mut NoSpawn);
    assert_eq!(base.instructions as usize, exec.trace.len());

    let pf = MachineConfig::hpca07();
    let prepared = PreparedTrace::new(&exec.trace, &pf);
    for policy in Policy::figure9() {
        let mut src = StaticSpawnSource::new(analysis.spawn_table(policy));
        let r = simulate(&prepared, &pf, &mut src);
        assert_eq!(r.instructions, base.instructions, "{policy}: same work");
        assert!(r.ipc() <= pf.width as f64, "{policy}: IPC bounded by width");
        assert!(r.max_live_tasks <= pf.max_tasks, "{policy}: task bound");
    }
}

/// Every workload's spawn analysis produces a sane static distribution.
#[test]
fn every_workload_has_postdominator_spawns() {
    for w in polyflow::workloads::all() {
        let analysis = ProgramAnalysis::analyze(&w.program);
        let d = analysis.static_distribution();
        assert!(
            d.total_postdom() >= 2,
            "{}: needs at least two postdominator spawn candidates",
            w.name
        );
        // Spawn targets always lie within the program.
        for sp in analysis.candidates() {
            assert!(sp.target.index() < w.program.len(), "{}: {sp}", w.name);
            assert!(sp.trigger.index() < w.program.len(), "{}: {sp}", w.name);
        }
    }
}

/// The superscalar is deterministic: same trace, same cycles.
#[test]
fn simulation_is_deterministic() {
    let w = polyflow::workloads::by_name("gzip").unwrap();
    let trace = execute_window(&w.program, 60_000).unwrap().trace;
    let cfg = MachineConfig::superscalar();
    let prepared = PreparedTrace::new(&trace, &cfg);
    let a = simulate(&prepared, &cfg, &mut NoSpawn);
    let b = simulate(&prepared, &cfg, &mut NoSpawn);
    assert_eq!(a, b);
}

/// PolyFlow with spawning disabled equals the superscalar configured with
/// the PolyFlow front end minus the extra task: the paper's
/// equivalent-resources premise (§3.2).
#[test]
fn no_spawn_polyflow_never_loses_to_superscalar() {
    let w = polyflow::workloads::by_name("parser").unwrap();
    let trace = execute_window(&w.program, 80_000).unwrap().trace;
    let ss = MachineConfig::superscalar();
    let pf = MachineConfig::hpca07();
    let prep_ss = PreparedTrace::new(&trace, &ss);
    let prep_pf = PreparedTrace::new(&trace, &pf);
    let a = simulate(&prep_ss, &ss, &mut NoSpawn);
    let b = simulate(&prep_pf, &pf, &mut NoSpawn);
    // With a single task the extra fetch port is never used.
    assert_eq!(a.cycles, b.cycles);
}

/// The classification of Figure 5 is exhaustive: every candidate is one
/// of the five kinds, and the hint-cache lookup can find each trigger.
#[test]
fn classification_is_exhaustive_and_indexed() {
    let w = polyflow::workloads::by_name("gcc").unwrap();
    let analysis = ProgramAnalysis::analyze(&w.program);
    let table = analysis.spawn_table(Policy::Postdoms);
    for sp in table.points() {
        assert!(sp.kind.is_postdom());
        assert!(
            table.lookup(sp.trigger).any(|s| s.target == sp.target),
            "trigger {} must be indexed",
            sp.trigger
        );
    }
    // Exclusion policies partition the postdominator set.
    let full = table.len();
    for kind in SpawnKind::POSTDOM_KINDS {
        let without = analysis.spawn_table(Policy::PostdomsWithout(kind)).len();
        let only = analysis
            .candidates()
            .iter()
            .filter(|s| s.kind == kind)
            .count();
        assert_eq!(
            without + only,
            full,
            "excluding {kind} must remove exactly its kind"
        );
    }
}
