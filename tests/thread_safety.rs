//! Compile-time guard for the parallel sweep harness: the types shared
//! across worker threads (or handed to per-thread simulator runs) must
//! stay `Send + Sync` / `Send`. If a future change smuggles an `Rc`, a
//! raw pointer, or interior mutability into one of these, this test stops
//! compiling instead of the sweep engine silently losing parallelism.

use polyflow::core::ProgramAnalysis;
use polyflow::isa::{Dataflow, PcIndex, Program, Trace};
use polyflow::reconv::ReconvergencePredictor;
use polyflow::sim::{
    HintCacheSource, MachineConfig, NoSpawn, PredictionTrace, PreparedTrace, ReconvSpawnSource,
    SimResult, SimScratch, StaticSpawnSource,
};

const fn assert_send_sync<T: Send + Sync>() {}
const fn assert_send<T: Send>() {}

// Shared read-only across every worker (must be Send + Sync).
const _: () = {
    assert_send_sync::<Trace>();
    assert_send_sync::<Program>();
    assert_send_sync::<ProgramAnalysis>();
    assert_send_sync::<MachineConfig>();
    assert_send_sync::<Dataflow>();
    assert_send_sync::<PcIndex>();
    assert_send_sync::<PredictionTrace>();
    assert_send_sync::<PreparedTrace>();
    assert_send_sync::<SimResult>();
};

// Owned per worker / per cell (must at least be Send).
const _: () = {
    assert_send::<SimScratch>();
    assert_send::<NoSpawn>();
    assert_send::<StaticSpawnSource>();
    assert_send::<ReconvSpawnSource>();
    assert_send::<HintCacheSource<StaticSpawnSource>>();
    assert_send::<ReconvergencePredictor>();
};

/// And the runtime counterpart: a `PreparedTrace` really is shareable —
/// concurrent simulations over one shared prep agree with a serial run.
#[test]
fn prepared_trace_is_shared_across_threads() {
    use polyflow::isa::{execute_window, AluOp, Cond, ProgramBuilder, Reg};
    use polyflow::sim::simulate;

    let mut b = ProgramBuilder::new();
    b.begin_function("main");
    let top = b.fresh_label("top");
    b.li(Reg::R1, 0);
    b.bind_label(top);
    b.alui(AluOp::Add, Reg::R2, Reg::R2, 3);
    b.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    b.br_imm(Cond::Lt, Reg::R1, 500, top);
    b.halt();
    b.end_function();
    let program = b.build().unwrap();
    let trace = execute_window(&program, 100_000).unwrap().trace;
    let cfg = MachineConfig::superscalar();
    let prep = PreparedTrace::new(&trace, &cfg);

    let expected = simulate(&prep, &cfg, &mut NoSpawn);
    let results: Vec<SimResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let prep = prep.clone();
                let cfg = cfg.clone();
                scope.spawn(move || simulate(&prep, &cfg, &mut NoSpawn))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in results {
        assert_eq!(r, expected);
    }
}
