//! The paper's §2.3 / Figure 6 walkthrough on the `twolf` stand-in.
//!
//! Shows how control-equivalent spawning recovers the benefit of loop
//! spawning in `new_dbox_a`: the inner-loop iteration spawns are covered
//! by a chain of hammock spawns, and the outer-loop iteration spawn by the
//! inner loop's fall-through.
//!
//! Run with: `cargo run --release --example twolf_kernel`

use polyflow::core::{Policy, ProgramAnalysis, SpawnKind};
use polyflow::isa::execute_window;
use polyflow::sim::{simulate, MachineConfig, NoSpawn, PreparedTrace, StaticSpawnSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = polyflow::workloads::by_name("twolf").expect("twolf exists");
    let program = workload.program;

    println!("=== new_dbox_a spawn points (paper Figure 6) ===");
    let analysis = ProgramAnalysis::analyze(&program);
    let f = analysis.function("new_dbox_a").expect("kernel function");
    let candidates = f.candidates();
    for sp in &candidates {
        println!("  {sp}");
    }
    let hammocks = candidates
        .iter()
        .filter(|s| s.kind == SpawnKind::Hammock)
        .count();
    let loop_fts = candidates
        .iter()
        .filter(|s| s.kind == SpawnKind::LoopFallThrough)
        .count();
    println!(
        "\nThe kernel exposes {hammocks} hammock spawns (the if-then-else and the two\n\
         ABS if-thens) and {loop_fts} loop fall-through spawns — together they recover\n\
         the inner- and outer-loop iteration spawns, as §2.3 explains."
    );

    // Measure: loop spawning vs hammock+loopFT vs full postdominators.
    let trace = execute_window(&program, workload.window)?.trace;
    let ss = MachineConfig::superscalar();
    let prepared = PreparedTrace::new(&trace, &ss);
    let base = simulate(&prepared, &ss, &mut NoSpawn);
    println!("\nsuperscalar: IPC {:.2}", base.ipc());

    let pf = MachineConfig::hpca07();
    let prepared = PreparedTrace::new(&trace, &pf);
    for policy in [
        Policy::Loop,
        Policy::Hammock,
        Policy::LoopFt,
        Policy::Postdoms,
    ] {
        let mut src = StaticSpawnSource::new(analysis.spawn_table(policy));
        let r = simulate(&prepared, &pf, &mut src);
        println!(
            "{:>10}: speedup {:6.1}% ({} spawns)",
            policy.name(),
            r.speedup_percent_over(&base),
            r.total_spawns()
        );
    }
    println!(
        "\nLoop fall-through spawns expose the outer-loop parallelism, matching the\n\
         paper's observation that they perform similarly to, or better than, loop\n\
         spawns on twolf (§2.3)."
    );
    Ok(())
}
