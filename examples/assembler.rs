//! Write a kernel in the textual assembly format, run the whole PolyFlow
//! pipeline on it, and disassemble it back.
//!
//! Run with: `cargo run --release --example assembler`

use polyflow::core::{Policy, ProgramAnalysis};
use polyflow::isa::{execute_window, parse_program, to_asm};
use polyflow::sim::{simulate, MachineConfig, NoSpawn, PreparedTrace, StaticSpawnSource};

/// A pointer-chase kernel with a data-dependent hammock — written as
/// text, the way a downstream user would prototype a workload.
const KERNEL: &str = r#"
; weights drive the hammock; the chain is walked 400 times
.data weights = [17, 903, 250, 999, 42, 731, 8, 505, 611, 44, 872, 13, 509, 498, 77, 941, 230, 864, 391, 702, 155, 628, 983, 46, 519, 330, 761, 94, 457, 808, 273, 666]

fn main {
    la   r16, weights
    li   r1, 0
loop:
    andi r12, r1, 31         ; index into the weights
    slli r12, r12, 3
    add  r13, r16, r12
    ld   r2, 0(r13)          ; data-dependent value
    li   r28, 500
    blt  r2, r28, small      ; the hammock branch
    muli r3, r2, 3           ; expensive arm
    srai r3, r3, 1
    addi r4, r4, 1
    j    join
small:
    addi r5, r5, 1
join:
    add  r6, r4, r5          ; reconvergent work
    addi r1, r1, 1
    li   r28, 400
    blt  r1, r28, loop
    halt
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(KERNEL)?;
    println!(
        "parsed {} instructions across {} function(s)",
        program.len(),
        program.functions().len()
    );

    // Static analysis: where are the spawn points?
    let analysis = ProgramAnalysis::analyze(&program);
    println!("\nspawn candidates:");
    for sp in analysis.candidates() {
        println!("  {sp}");
    }

    // Run it.
    let trace = execute_window(&program, 100_000)?.trace;
    let ss = MachineConfig::superscalar();
    let prep = PreparedTrace::new(&trace, &ss);
    let base = simulate(&prep, &ss, &mut NoSpawn);
    let pf = MachineConfig::hpca07();
    let prep = PreparedTrace::new(&trace, &pf);
    let mut src = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
    let r = simulate(&prep, &pf, &mut src);
    println!(
        "\nsuperscalar IPC {:.2}; postdoms IPC {:.2} => {:.1}% speedup ({} spawns)",
        base.ipc(),
        r.ipc(),
        r.speedup_percent_over(&base),
        r.total_spawns()
    );

    // And back to text.
    println!("\n--- disassembly (round-trips through parse_program) ---");
    print!("{}", to_asm(&program));
    Ok(())
}
