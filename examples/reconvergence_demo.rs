//! Demonstrates the dynamic reconvergence predictor (§2.4/§4.4): trains
//! it on a retirement stream and compares its predictions against the
//! compiler-computed immediate postdominators.
//!
//! Run with: `cargo run --release --example reconvergence_demo -- [workload]`

use polyflow::core::{ProgramAnalysis, SpawnKind};
use polyflow::isa::{execute_window, Pc};
use polyflow::reconv::{train_on_trace, ReconvConfig};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "crafty".into());
    let workload = polyflow::workloads::by_name(&name).expect("known workload");

    // Ground truth: the compiler's immediate postdominators per branch.
    let analysis = ProgramAnalysis::analyze(&workload.program);
    let truth: HashMap<Pc, Pc> = analysis
        .candidates()
        .iter()
        .filter(|sp| sp.kind != SpawnKind::Loop && sp.kind != SpawnKind::ProcFallThrough)
        .map(|sp| (sp.trigger, sp.target))
        .collect();

    // Train the predictor on the retirement stream.
    let trace = execute_window(&workload.program, workload.window)?.trace;
    let predictor = train_on_trace(&trace, ReconvConfig::default());
    println!(
        "{name}: trained on {} retired instructions; {} branches tracked, {} fully trained",
        predictor.observed(),
        predictor.trained_branches(),
        predictor.fully_trained_branches()
    );

    // Score predictions against the static analysis.
    let mut exact = 0;
    let mut predicted = 0;
    let mut missed = 0;
    for (&branch, &ipostdom) in &truth {
        match predictor.predict(branch) {
            Some(p) if p == ipostdom => {
                exact += 1;
                predicted += 1;
            }
            Some(p) => {
                predicted += 1;
                println!("  {branch}: predicted {p}, ipostdom is {ipostdom}");
            }
            None => {
                missed += 1;
                println!("  {branch}: no prediction (ipostdom {ipostdom})");
            }
        }
    }
    println!(
        "\n{exact}/{} branch reconvergence points predicted exactly \
         ({predicted} predicted, {missed} unpredicted)",
        truth.len()
    );
    println!(
        "The paper (§4.4) finds the predictor approximates immediate postdominators\n\
         'with reasonable accuracy'; the residue is warm-up plus reconvergences a\n\
         forward analysis cannot see."
    );
    Ok(())
}
