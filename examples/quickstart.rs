//! Quickstart: the paper's running example (Figures 1–4).
//!
//! Builds the six-block flow graph of Figure 1 — a loop containing an
//! if-then-else — then prints its postdominator tree (Figure 2), its
//! control-dependence relation (Figure 3), and the control-equivalent
//! spawn points that let a machine fetch like Figure 4.
//!
//! Run with: `cargo run --example quickstart`

use polyflow::cfg::{Cfg, ControlDeps, DomTree, LoopForest};
use polyflow::core::{Policy, ProgramAnalysis};
use polyflow::isa::{AluOp, Cond, Pc, ProgramBuilder, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Figure 1: the flow graph ------------------------------------------------
    // A: induction update, B: if-else branch, C: then arm, D: else arm,
    // E: join, F: loop branch.
    let mut b = ProgramBuilder::named("fig1");
    b.begin_function("fig1");
    let la = b.fresh_label("A");
    let ld = b.fresh_label("D");
    let le = b.fresh_label("E");
    b.bind_label(la);
    b.alui(AluOp::Add, Reg::R1, Reg::R1, 1); // A
    b.br_imm(Cond::Eq, Reg::R2, 0, ld); // B
    b.alui(AluOp::Add, Reg::R3, Reg::R3, 1); // C
    b.jmp(le);
    b.bind_label(ld);
    b.alui(AluOp::Add, Reg::R4, Reg::R4, 1); // D
    b.bind_label(le);
    b.alui(AluOp::Add, Reg::R5, Reg::R5, 1); // E
    b.br_imm(Cond::Lt, Reg::R1, 3, la); // F
    b.halt();
    b.end_function();
    let program = b.build()?;

    println!("=== Figure 1: control flow graph ===");
    println!("{}", program.listing());
    let cfg = Cfg::build(&program, program.function("fig1").unwrap());
    print!("{}", cfg.to_dot());

    // ---- Figure 2: the postdominator tree ----------------------------------------
    println!("\n=== Figure 2: postdominator tree (parent = immediate postdominator) ===");
    let pdom = DomTree::postdominators(&cfg);
    for block in cfg.blocks() {
        match pdom.idom(block.id) {
            Some(p) => println!("  ipostdom({}) = {}", block.id, p),
            None => println!("  ipostdom({}) = <virtual exit>", block.id),
        }
    }

    // ---- Figure 3: control dependence ---------------------------------------------
    println!("\n=== Figure 3: control dependence ===");
    let cd = ControlDeps::compute(&cfg, &pdom);
    for block in cfg.blocks() {
        let deps: Vec<String> = cd
            .deps_of(block.id)
            .iter()
            .map(|(b, k)| format!("{b} ({k:?} edge)"))
            .collect();
        if !deps.is_empty() {
            println!("  {} is control dependent on {}", block.id, deps.join(", "));
        }
    }

    // Loops, for completeness.
    let dom = DomTree::dominators(&cfg);
    let loops = LoopForest::compute(&cfg, &dom);
    println!("\nNatural loops: {}", loops.len());
    for l in loops.loops() {
        println!("  header {} body {:?}", l.header, l.body);
    }

    // ---- Figure 4: control-equivalent spawn points --------------------------------
    println!("\n=== Control-equivalent spawn points (enable Figure 4's fetch order) ===");
    let analysis = ProgramAnalysis::analyze(&program);
    for sp in analysis.spawn_table(Policy::Postdoms).points() {
        println!(
            "  fetch {} => may spawn a task at {} [{}]",
            sp.trigger, sp.target, sp.kind
        );
    }
    println!(
        "\nWhen the fetch unit reaches the branch in B it can spawn E: E is\n\
         control equivalent to B, so the new task is no more speculative than\n\
         the path that led to the branch (paper §2.1)."
    );

    // Sanity: E postdominates B.
    let b_block = cfg.block_at(Pc::new(2)).unwrap();
    let e_block = cfg.block_at(Pc::new(6)).unwrap();
    assert!(pdom.dominates(e_block, b_block));

    // ---- Figure 4: a dynamic fetch ordering ---------------------------------------
    // Execute the program, then replay it through the PolyFlow machine and
    // print the spawns the Task Spawn Unit performed — each one opens a
    // parallel fetch stream at a control-equivalent point, which is
    // exactly the unfolding Figure 4 depicts.
    use polyflow::isa::execute_window;
    use polyflow::sim::{simulate, MachineConfig, PreparedTrace, StaticSpawnSource};

    let trace = execute_window(&program, 10_000)?.trace;
    let cfg_pf = MachineConfig {
        min_spawn_distance: 1, // the example's blocks are tiny
        ..MachineConfig::hpca07()
    };
    let prepared = PreparedTrace::new(&trace, &cfg_pf);
    let mut source = StaticSpawnSource::new(analysis.spawn_table(Policy::Postdoms));
    let result = simulate(&prepared, &cfg_pf, &mut source);

    println!("\n=== Figure 4: dynamic fetch ordering (spawn log) ===");
    for ev in &result.spawn_log {
        println!(
            "  cycle {:>3}: fetching {} spawned a task at {} [{}] ({} tasks live)",
            ev.cycle, ev.trigger, ev.target, ev.kind, ev.live_tasks
        );
    }
    println!(
        "\n{} instructions retired in {} cycles (IPC {:.2}) with {} spawns.",
        result.instructions,
        result.cycles,
        result.ipc(),
        result.total_spawns()
    );
    Ok(())
}
