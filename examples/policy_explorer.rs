//! Interactive-ish policy explorer: run any workload under any spawn
//! policy and print the full statistics.
//!
//! Run with: `cargo run --release --example policy_explorer -- <workload> [policy]`
//! where workload is one of the 12 benchmark names (default `mcf`) and
//! policy is `loop | loopFT | procFT | hammock | other | postdoms |
//! rec_pred | all` (default `all`).

use polyflow::core::{Policy, ProgramAnalysis};
use polyflow::isa::execute_window;
use polyflow::reconv::ReconvConfig;
use polyflow::sim::{
    simulate, MachineConfig, NoSpawn, PreparedTrace, ReconvSpawnSource, SimResult,
    StaticSpawnSource,
};

fn print_result(label: &str, r: &SimResult, base: &SimResult) {
    println!(
        "{label:>10}: IPC {:.2}  speedup {:6.1}%  spawns {:6}  diverted {:7}  \
         i$-miss {:5}  d$-miss {:6}  max tasks {}",
        r.ipc(),
        r.speedup_percent_over(base),
        r.total_spawns(),
        r.diverted,
        r.l1i_misses,
        r.l1d_misses,
        r.max_live_tasks
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".into());
    let which = std::env::args().nth(2).unwrap_or_else(|| "all".into());

    let Some(workload) = polyflow::workloads::by_name(&name) else {
        eprintln!(
            "unknown workload `{name}`; choose one of {:?}",
            polyflow::workloads::NAMES
        );
        std::process::exit(1);
    };
    println!(
        "workload: {name} ({} static instructions)",
        workload.program.len()
    );

    let trace = execute_window(&workload.program, workload.window)?.trace;
    println!("trace: {} retired instructions", trace.len());
    let analysis = ProgramAnalysis::analyze(&workload.program);
    println!(
        "static spawn candidates: {}",
        analysis.static_distribution()
    );

    let ss = MachineConfig::superscalar();
    let prepared_ss = PreparedTrace::new(&trace, &ss);
    let base = simulate(&prepared_ss, &ss, &mut NoSpawn);
    println!(
        "\nsuperscalar baseline: IPC {:.2} ({} cycles)",
        base.ipc(),
        base.cycles
    );

    let pf = MachineConfig::hpca07();
    let prepared = PreparedTrace::new(&trace, &pf);
    let policies = Policy::figure9();
    for &policy in &policies {
        if which != "all" && which != policy.name() {
            continue;
        }
        let mut src = StaticSpawnSource::new(analysis.spawn_table(policy));
        let r = simulate(&prepared, &pf, &mut src);
        print_result(&policy.name(), &r, &base);
    }
    if which == "all" || which == "rec_pred" {
        let mut src = ReconvSpawnSource::new(ReconvConfig::default());
        let r = simulate(&prepared, &pf, &mut src);
        print_result("rec_pred", &r, &base);
    }
    Ok(())
}
